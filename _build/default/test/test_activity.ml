module Activity = Nano_sim.Activity
module Netlist = Nano_netlist.Netlist
module B = Nano_netlist.Netlist.Builder

let xor_circuit () =
  let b = B.create ~name:"x" () in
  let x = B.input b "x" in
  let y = B.input b "y" in
  B.output b "f" (B.xor2 b x y);
  B.finish b

let and_circuit () =
  let b = B.create ~name:"a" () in
  let x = B.input b "x" in
  let y = B.input b "y" in
  B.output b "f" (B.and2 b x y);
  B.finish b

let test_exact_xor () =
  let p = Activity.exact (xor_circuit ()) in
  (* XOR of two uniform inputs: p = 1/2, sw = 1/2. *)
  Helpers.check_float "gate activity" 0.5 p.Activity.average_gate_activity;
  Alcotest.(check int) "exact has no vectors" 0 p.Activity.vectors

let test_exact_and () =
  let p = Activity.exact (and_circuit ()) in
  (* AND: p = 1/4, sw = 2 * 1/4 * 3/4 = 3/8. *)
  Helpers.check_float "gate activity" 0.375 p.Activity.average_gate_activity

let test_exact_biased_inputs () =
  let p = Activity.exact ~input_probability:0.9 (and_circuit ()) in
  let expected_p = 0.81 in
  Helpers.check_float "activity" (2. *. expected_p *. (1. -. expected_p))
    p.Activity.average_gate_activity

let test_monte_carlo_converges () =
  let netlist = and_circuit () in
  let mc = Activity.monte_carlo ~vectors:65536 netlist in
  Helpers.check_in_range "mc close to exact" ~lo:0.36 ~hi:0.39
    mc.Activity.average_gate_activity;
  Alcotest.(check int) "vectors rounded" 65536 mc.Activity.vectors

let test_monte_carlo_deterministic () =
  let netlist = Helpers.random_netlist ~seed:5 ~inputs:4 ~gates:20 () in
  let a = Activity.monte_carlo ~seed:9 netlist in
  let b = Activity.monte_carlo ~seed:9 netlist in
  Alcotest.(check (array (float 0.)))
    "same seed same result" a.Activity.node_probability
    b.Activity.node_probability

let test_measured_toggle_matches_model () =
  (* Under temporal independence, the measured toggle rate equals
     2p(1-p) for every node. *)
  let netlist = Helpers.random_netlist ~seed:31 ~inputs:5 ~gates:25 () in
  let exact = Activity.exact netlist in
  let measured = Activity.measured_toggle_rate ~pairs:200000 netlist in
  Array.iteri
    (fun node sw ->
      let m = measured.(node) in
      if Float.abs (m -. sw) > 0.02 then
        Alcotest.failf "node %d: model %.4f measured %.4f" node sw m)
    exact.Activity.node_activity

let test_average_over_gates_excludes_sources () =
  let b = B.create () in
  let x = B.input b "x" in
  let inv = B.not_ b x in
  B.output b "o" inv;
  let n = B.finish b in
  let per_node = Array.make (Netlist.node_count n) 0. in
  per_node.(x) <- 100.;
  per_node.(inv) <- 2.;
  Helpers.check_float "only gate counted" 2.
    (Activity.average_over_gates n per_node)

let prop_mc_close_to_exact =
  QCheck2.Test.make ~name:"MC activity close to BDD-exact" ~count:20
    QCheck2.Gen.(int_range 0 10000)
    (fun seed ->
      let n = Helpers.random_netlist ~seed ~inputs:4 ~gates:15 () in
      let ex = Activity.exact n in
      let mc = Activity.monte_carlo ~vectors:16384 n in
      Float.abs
        (ex.Activity.average_gate_activity
        -. mc.Activity.average_gate_activity)
      < 0.02)

let suite =
  [
    Alcotest.test_case "exact xor" `Quick test_exact_xor;
    Alcotest.test_case "exact and" `Quick test_exact_and;
    Alcotest.test_case "exact biased" `Quick test_exact_biased_inputs;
    Alcotest.test_case "monte carlo converges" `Quick test_monte_carlo_converges;
    Alcotest.test_case "monte carlo deterministic" `Quick
      test_monte_carlo_deterministic;
    Alcotest.test_case "toggle rate matches model" `Quick
      test_measured_toggle_matches_model;
    Alcotest.test_case "average over gates" `Quick
      test_average_over_gates_excludes_sources;
    Helpers.qcheck prop_mc_close_to_exact;
  ]
