module Headline = Nano_bounds.Headline
module Profile = Nano_bounds.Profile

let profiles () =
  List.filter_map
    (fun name ->
      Option.map
        (fun e ->
          let mapped =
            Nano_synth.Script.rugged_lite (e.Nano_circuits.Suite.build ())
          in
          { (Profile.of_netlist mapped) with Profile.name })
        (Nano_circuits.Suite.find name))
    [ "rca16"; "parity16"; "mult4" ]

let test_verdict () =
  let v = Headline.check (profiles ()) in
  Helpers.check_float "eps" 0.01 v.Headline.epsilon;
  Helpers.check_float "delta" 0.01 v.Headline.delta;
  Alcotest.(check int) "three benchmarks" 3
    (List.length v.Headline.per_benchmark);
  Alcotest.(check bool) "orders" true
    (v.Headline.min_overhead <= v.Headline.mean_overhead
    && v.Headline.mean_overhead <= v.Headline.max_overhead);
  (* The paper's claim must hold on this sub-suite: parity16 and rca16
     exceed 40%. *)
  Alcotest.(check bool) "claim holds" true v.Headline.holds;
  Alcotest.(check bool) "rca16 above 40%" true
    (List.assoc "rca16" v.Headline.per_benchmark >= 0.40)

let test_threshold_knob () =
  let v = Headline.check ~threshold:10.0 (profiles ()) in
  Alcotest.(check bool) "absurd threshold fails" false v.Headline.holds

let test_empty_rejected () =
  Helpers.check_invalid "empty" (fun () -> ignore (Headline.check []))

let suite =
  [
    Alcotest.test_case "verdict" `Quick test_verdict;
    Alcotest.test_case "threshold knob" `Quick test_threshold_knob;
    Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
  ]
