module Energy_model = Nano_energy.Energy_model
module Technology = Nano_energy.Technology
module Netlist = Nano_netlist.Netlist
module Gate = Nano_netlist.Gate
module B = Nano_netlist.Netlist.Builder

let test_gate_capacitance_model () =
  Helpers.check_float "inverter" 0.5 (Energy_model.gate_capacitance Gate.Not ~arity:1);
  Helpers.check_float "nand2" 1.0 (Energy_model.gate_capacitance Gate.Nand ~arity:2);
  Helpers.check_float "nand3" 1.15 (Energy_model.gate_capacitance Gate.Nand ~arity:3);
  Helpers.check_float "xor2" 1.8 (Energy_model.gate_capacitance Gate.Xor ~arity:2);
  Helpers.check_float "source free" 0.
    (Energy_model.gate_capacitance Gate.Input ~arity:0);
  Helpers.check_float "buffer free" 0.
    (Energy_model.gate_capacitance Gate.Buf ~arity:1)

let nand_pair () =
  let b = B.create () in
  let x = B.input b "x" in
  let y = B.input b "y" in
  let g1 = B.nand2 b x y in
  let g2 = B.nand2 b g1 y in
  B.output b "o" g2;
  B.finish b

let test_weighted_consistency_on_uniform_circuit () =
  (* All-NAND2 circuit with uniform activity: weighted result equals the
     flat model with activity = that uniform value (cap unit = nand2). *)
  let n = nand_pair () in
  let activity = Array.make (Netlist.node_count n) 0.3 in
  let tech = Technology.ideal_switching_only in
  let weighted = Energy_model.of_netlist_weighted ~tech ~node_activity:activity n in
  let flat = Energy_model.of_profile ~tech ~size:2 ~depth:2 ~activity:0.3 in
  Helpers.check_loose "same switching energy"
    flat.Energy_model.switching_energy weighted.Energy_model.switching_energy

let test_xor_costs_more () =
  let make kind =
    let b = B.create () in
    let x = B.input b "x" in
    let y = B.input b "y" in
    B.output b "o" (B.add b kind [ x; y ]);
    B.finish b
  in
  let tech = Technology.nm90 in
  let e kind =
    let n = make kind in
    (Energy_model.of_netlist_weighted ~tech
       ~node_activity:(Array.make (Netlist.node_count n) 0.4)
       n)
      .Energy_model.total_energy
  in
  Alcotest.(check bool) "xor > nand" true (e Gate.Xor > e Gate.Nand);
  Alcotest.(check bool) "nand > not-free" true (e Gate.Nand > 0.)

let test_uses_timing_not_levels () =
  (* An inverter chain has depth 4 in levels but only 4 * 0.6 in the
     default delay model; weighted delay must reflect the latter. *)
  let b = B.create () in
  let x = B.input b "x" in
  let rec chain node k = if k = 0 then node else chain (B.not_ b node) (k - 1) in
  B.output b "o" (chain x 4);
  let n = B.finish b in
  let tech = Technology.ideal_switching_only in
  let weighted =
    Energy_model.of_netlist_weighted ~tech
      ~node_activity:(Array.make (Netlist.node_count n) 0.5)
      n
  in
  Helpers.check_loose "timed delay"
    (4. *. 0.6 *. Technology.gate_delay tech)
    weighted.Energy_model.delay

let test_validation () =
  let n = nand_pair () in
  Helpers.check_invalid "length mismatch" (fun () ->
      ignore
        (Energy_model.of_netlist_weighted ~tech:Technology.nm90
           ~node_activity:[| 0.5 |] n));
  Helpers.check_invalid "activity out of range" (fun () ->
      ignore
        (Energy_model.of_netlist_weighted ~tech:Technology.nm90
           ~node_activity:(Array.make (Netlist.node_count n) 1.5)
           n))

let test_glitch_aware_energy () =
  (* Plugging glitch-aware transitions instead of settled activity must
     raise the estimate on a glitchy circuit. *)
  let n = Nano_circuits.Multipliers.array_multiplier ~width:4 in
  let p = Nano_sim.Glitch.unit_delay ~pairs:2048 n in
  let tech = Technology.nm90 in
  let clamp =
    Array.map (fun v -> Nano_util.Math_ext.clamp ~lo:0. ~hi:1. (v /. 2.))
  in
  (* normalize per-change transition counts into [0,1] activities by
     halving (a transition pair = one full cycle) *)
  let settled =
    Energy_model.of_netlist_weighted ~tech
      ~node_activity:(clamp p.Nano_sim.Glitch.node_settled_toggles)
      n
  in
  let glitchy =
    Energy_model.of_netlist_weighted ~tech
      ~node_activity:(clamp p.Nano_sim.Glitch.node_transitions)
      n
  in
  Alcotest.(check bool) "glitches cost energy" true
    (glitchy.Energy_model.switching_energy
    > settled.Energy_model.switching_energy)

let suite =
  [
    Alcotest.test_case "gate capacitance model" `Quick
      test_gate_capacitance_model;
    Alcotest.test_case "uniform consistency" `Quick
      test_weighted_consistency_on_uniform_circuit;
    Alcotest.test_case "xor costs more" `Quick test_xor_costs_more;
    Alcotest.test_case "uses timing" `Quick test_uses_timing_not_levels;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "glitch-aware energy" `Quick test_glitch_aware_energy;
  ]
