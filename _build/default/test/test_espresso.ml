module Espresso = Nano_synth.Espresso_lite
module QM = Nano_synth.Quine_mccluskey
module Cube = Nano_logic.Cube
module TT = Nano_logic.Truth_table

let covers_exactly ~arity cover tt =
  TT.equal (Cube.Cover.to_truth_table ~arity cover) tt

let test_simple_functions () =
  (* AND: one cube. OR: n cubes of one literal. Majority: 3 cubes. *)
  let check name tt expected_cubes =
    let cover = Espresso.minimize_table tt in
    Alcotest.(check bool) (name ^ " correct") true
      (covers_exactly ~arity:(TT.arity tt) cover tt);
    Alcotest.(check int) (name ^ " cubes") expected_cubes
      (Cube.Cover.cube_count cover)
  in
  check "and3" (Nano_logic.Std_functions.and_all ~arity:3) 1;
  check "or3" (Nano_logic.Std_functions.or_all ~arity:3) 3;
  check "maj3" (Nano_logic.Std_functions.majority ~arity:3) 3;
  check "parity3" (Nano_logic.Std_functions.parity ~arity:3) 4

let test_tautology () =
  let cover =
    Espresso.minimize ~arity:4 ~on_set:(List.init 16 (fun i -> i)) ~dc_set:[]
  in
  Alcotest.(check int) "one cube" 1 (Cube.Cover.cube_count cover);
  Alcotest.(check int) "no literals" 0 (Cube.Cover.literal_count cover)

let test_empty () =
  Alcotest.(check int) "empty" 0
    (Cube.Cover.cube_count (Espresso.minimize ~arity:3 ~on_set:[] ~dc_set:[]))

let test_dont_cares_exploited () =
  let with_dc = Espresso.minimize ~arity:2 ~on_set:[ 1 ] ~dc_set:[ 3 ] in
  Alcotest.(check int) "single literal" 1 (Cube.Cover.literal_count with_dc);
  Alcotest.(check bool) "off minterm avoided" false
    (Cube.Cover.eval with_dc 0);
  Alcotest.(check bool) "off minterm avoided 2" false
    (Cube.Cover.eval with_dc 2)

let test_matches_qm_quality () =
  (* On small random functions the heuristic should land within one cube
     of the exact minimum most of the time; assert a loose bound. *)
  let rng = Nano_util.Prng.create ~seed:77 in
  for _ = 1 to 30 do
    let arity = 4 + Nano_util.Prng.int rng ~bound:3 in
    let tt = TT.create ~arity (fun _ -> Nano_util.Prng.bool rng) in
    let exact = QM.minimize_table tt in
    let heuristic = Espresso.minimize_table tt in
    Alcotest.(check bool) "correct" true (covers_exactly ~arity heuristic tt);
    let ec = Cube.Cover.cube_count exact in
    let hc = Cube.Cover.cube_count heuristic in
    if hc > ec + 2 then
      Alcotest.failf "arity %d: heuristic %d cubes vs exact %d" arity hc ec
  done

let test_scales_past_qm () =
  (* 12-variable random function: espresso-lite must stay fast and
     correct (QM would enumerate a huge prime set here). *)
  let arity = 12 in
  let rng = Nano_util.Prng.create ~seed:5 in
  let tt = TT.create ~arity (fun _ -> Nano_util.Prng.float rng < 0.2) in
  let cover = Espresso.minimize_table tt in
  Alcotest.(check bool) "correct at 12 vars" true
    (covers_exactly ~arity cover tt);
  Alcotest.(check bool) "minimized below minterms" true
    (Cube.Cover.cube_count cover < TT.ones tt)

let test_minimize_cover_entry () =
  (* Start from a redundant hand cover. *)
  let on_cover =
    [ Cube.of_string "11--"; Cube.of_string "11-1"; Cube.of_string "111-" ]
  in
  let minimized = Espresso.minimize_cover ~arity:4 ~on_cover ~dc_set:[] in
  Alcotest.(check int) "collapses to one cube" 1
    (Cube.Cover.cube_count minimized);
  Alcotest.(check bool) "same function" true
    (Cube.Cover.equivalent ~arity:4 on_cover minimized)

let prop_correct_cover =
  QCheck2.Test.make ~name:"espresso covers exactly the ON-set" ~count:200
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 1 7))
    (fun (seed, arity_pick) ->
      let rng = Nano_util.Prng.create ~seed in
      let n = arity_pick in
      let tt = TT.create ~arity:n (fun _ -> Nano_util.Prng.bool rng) in
      covers_exactly ~arity:n (Espresso.minimize_table tt) tt)

let prop_respects_dont_cares =
  QCheck2.Test.make ~name:"espresso never covers the OFF-set" ~count:40
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 2 6))
    (fun (seed, arity_pick) ->
      let rng = Nano_util.Prng.create ~seed in
      let n = arity_pick in
      let size = 1 lsl n in
      let kind = Array.init size (fun _ -> Nano_util.Prng.int rng ~bound:3) in
      let collect v =
        Array.to_list kind
        |> List.mapi (fun i k -> (i, k))
        |> List.filter (fun (_, k) -> k = v)
        |> List.map fst
      in
      let on_set = collect 0 and dc_set = collect 1 in
      let cover = Espresso.minimize ~arity:n ~on_set ~dc_set in
      List.for_all (fun m -> Cube.Cover.eval cover m) on_set
      && List.for_all (fun m -> not (Cube.Cover.eval cover m)) (collect 2))

let prop_cubes_are_prime =
  QCheck2.Test.make ~name:"espresso cubes are prime (maximally expanded)"
    ~count:40
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 2 5))
    (fun (seed, arity_pick) ->
      let rng = Nano_util.Prng.create ~seed in
      let n = arity_pick in
      let tt = TT.create ~arity:n (fun _ -> Nano_util.Prng.bool rng) in
      let cover = Espresso.minimize_table tt in
      (* dropping any literal of any cube must hit the OFF-set *)
      List.for_all
        (fun cube ->
          List.for_all
            (fun var ->
              match Cube.literal cube var with
              | Cube.Dont_care -> true
              | Cube.Zero | Cube.One ->
                let widened =
                  Cube.make
                    (Array.init n (fun i ->
                         if i = var then Cube.Dont_care else Cube.literal cube i))
                in
                (* widened must cover some OFF minterm *)
                List.exists
                  (fun m -> Cube.covers widened m && not (TT.eval tt m))
                  (List.init (1 lsl n) (fun i -> i)))
            (List.init n (fun i -> i)))
        cover)

let suite =
  [
    Alcotest.test_case "simple functions" `Quick test_simple_functions;
    Alcotest.test_case "tautology" `Quick test_tautology;
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "don't cares" `Quick test_dont_cares_exploited;
    Alcotest.test_case "matches QM quality" `Quick test_matches_qm_quality;
    Alcotest.test_case "scales past QM" `Quick test_scales_past_qm;
    Alcotest.test_case "minimize_cover entry" `Quick test_minimize_cover_entry;
    Helpers.qcheck prop_correct_cover;
    Helpers.qcheck prop_respects_dont_cares;
    Helpers.qcheck prop_cubes_are_prime;
  ]
