module Prng = Nano_util.Prng

let test_determinism () =
  let a = Prng.create ~seed:42 in
  let b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create ~seed:1 in
  let b = Prng.create ~seed:2 in
  Alcotest.(check bool) "different seeds differ" true
    (Prng.bits64 a <> Prng.bits64 b)

let test_copy () =
  let a = Prng.create ~seed:7 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copies agree" (Prng.bits64 a) (Prng.bits64 b)

let test_split_decorrelated () =
  let parent = Prng.create ~seed:9 in
  let child = Prng.split parent in
  (* The two streams should not be identical over a window. *)
  let same = ref true in
  for _ = 1 to 16 do
    if Prng.bits64 parent <> Prng.bits64 child then same := false
  done;
  Alcotest.(check bool) "split stream differs" false !same

let test_float_range () =
  let rng = Prng.create ~seed:11 in
  for _ = 1 to 1000 do
    let x = Prng.float rng in
    Helpers.check_in_range "float in [0,1)" ~lo:0. ~hi:0.9999999999999999 x
  done

let test_float_mean () =
  let rng = Prng.create ~seed:13 in
  let n = 20000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Prng.float rng
  done;
  Helpers.check_in_range "mean near 1/2" ~lo:0.48 ~hi:0.52
    (!sum /. float_of_int n)

let test_bernoulli () =
  let rng = Prng.create ~seed:17 in
  let n = 20000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Prng.bernoulli rng ~p:0.3 then incr hits
  done;
  Helpers.check_in_range "bernoulli(0.3)" ~lo:0.28 ~hi:0.32
    (float_of_int !hits /. float_of_int n);
  (* degenerate cases *)
  Alcotest.(check bool) "p=0" false (Prng.bernoulli rng ~p:0.);
  Alcotest.(check bool) "p=1" true (Prng.bernoulli rng ~p:1.)

let test_int_bound () =
  let rng = Prng.create ~seed:19 in
  let seen = Array.make 10 false in
  for _ = 1 to 2000 do
    let x = Prng.int rng ~bound:10 in
    Alcotest.(check bool) "in bound" true (x >= 0 && x < 10);
    seen.(x) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_word_density () =
  let rng = Prng.create ~seed:23 in
  let total = ref 0 in
  let words = 2000 in
  for _ = 1 to words do
    total := !total + Nano_util.Bits.popcount64 (Prng.word_with_density rng ~p:0.25)
  done;
  Helpers.check_in_range "density 1/4" ~lo:0.24 ~hi:0.26
    (float_of_int !total /. float_of_int (64 * words));
  Alcotest.(check int64) "density 0" 0L (Prng.word_with_density rng ~p:0.);
  Alcotest.(check int64) "density 1" (-1L) (Prng.word_with_density rng ~p:1.)

let test_shuffle_permutes () =
  let rng = Prng.create ~seed:29 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle_in_place rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation"
    (Array.init 50 (fun i -> i))
    sorted;
  Alcotest.(check bool) "actually shuffled" true
    (a <> Array.init 50 (fun i -> i))

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy" `Quick test_copy;
    Alcotest.test_case "split decorrelated" `Quick test_split_decorrelated;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "float mean" `Quick test_float_mean;
    Alcotest.test_case "bernoulli" `Quick test_bernoulli;
    Alcotest.test_case "int bound" `Quick test_int_bound;
    Alcotest.test_case "word density" `Quick test_word_density;
    Alcotest.test_case "shuffle" `Quick test_shuffle_permutes;
  ]
