module Figures = Nano_bounds.Figures

let series_labels series = List.map (fun s -> s.Figures.label) series

let test_fig2 () =
  let series = Figures.fig2_activity_map () in
  Alcotest.(check int) "seven epsilon curves" 7 (List.length series);
  (* The eps = 0 curve is the identity. *)
  let id = List.hd series in
  List.iter (fun (x, y) -> Helpers.check_float "identity" x y) id.Figures.points;
  (* The eps = 0.5 curve is flat 1/2. *)
  let flat = List.nth series 6 in
  List.iter (fun (_, y) -> Helpers.check_float "flat" 0.5 y) flat.Figures.points

let test_fig3 () =
  let series = Figures.fig3_redundancy () in
  Alcotest.(check (list string)) "labels" [ "k=2"; "k=3"; "k=4" ]
    (series_labels series);
  List.iter
    (fun s ->
      List.iter
        (fun (_, factor) ->
          Alcotest.(check bool) "factor >= 1" true (factor >= 1.))
        s.Figures.points;
      (* monotone in eps *)
      let rec mono = function
        | (_, a) :: ((_, b) :: _ as rest) -> a <= b +. 1e-9 && mono rest
        | _ -> true
      in
      Alcotest.(check bool) "monotone" true (mono s.Figures.points))
    series;
  (* Paper: order-of-magnitude redundancy near eps = 1/2. *)
  let k2 = List.hd series in
  let _, last = List.nth k2.Figures.points (List.length k2.Figures.points - 1) in
  Alcotest.(check bool) "explodes" true (last > 10.)

let test_fig4 () =
  let series = Figures.fig4_leakage () in
  Alcotest.(check int) "five sw0 curves" 5 (List.length series);
  List.iter
    (fun s ->
      let below_half = s.Figures.label < "sw0=0.50" in
      List.iter
        (fun (_, r) ->
          if below_half then
            Alcotest.(check bool) "ratio <= 1 for low sw0" true (r <= 1. +. 1e-9))
        s.Figures.points)
    series

let test_fig5 () =
  let series = Figures.fig5_delay_and_edp () in
  Alcotest.(check int) "3 delay + 3 edp" 6 (List.length series);
  (* Every EDP point must dominate the corresponding delay point (since
     energy ratio >= 1). *)
  let find label = List.find (fun s -> s.Figures.label = label) series in
  let delay = find "delay k=2" and edp = find "edp k=2" in
  List.iter2
    (fun (x1, d) (x2, e) ->
      Helpers.check_float "same grid" x1 x2;
      Alcotest.(check bool) "edp >= delay" true (e >= d -. 1e-9))
    delay.Figures.points edp.Figures.points

let test_fig6 () =
  let series = Figures.fig6_average_power () in
  Alcotest.(check int) "three fanins" 3 (List.length series);
  (* Each power curve starts above 1 and ends below 1 (the Figure 6
     crossover). *)
  List.iter
    (fun s ->
      match s.Figures.points with
      | (_, first) :: _ :: _ ->
        let _, last = List.nth s.Figures.points (List.length s.Figures.points - 1) in
        Alcotest.(check bool) (s.Figures.label ^ " starts above 1") true
          (first > 1.);
        Alcotest.(check bool) (s.Figures.label ^ " ends below 1") true
          (last < 1.)
      | _ -> Alcotest.fail "expected points")
    series

let test_parity10_constants () =
  let p = Figures.parity10 in
  Alcotest.(check int) "s" 10 p.Nano_bounds.Metrics.sensitivity;
  Alcotest.(check int) "S0" 21 p.Nano_bounds.Metrics.error_free_size;
  Alcotest.(check int) "n" 10 p.Nano_bounds.Metrics.inputs;
  Helpers.check_float "delta" 0.01 p.Nano_bounds.Metrics.delta

let test_ablation_omega () =
  let series = Figures.ablation_omega_models () in
  Alcotest.(check int) "two models" 2 (List.length series);
  let lumped = List.hd series and wire = List.nth series 1 in
  (* The paper's gate-lumped model is the more pessimistic one. *)
  List.iter2
    (fun (_, a) (_, b) ->
      Alcotest.(check bool) "lumped >= wire-split" true (a >= b -. 1e-9))
    lumped.Figures.points wire.Figures.points

let suite =
  [
    Alcotest.test_case "fig2" `Quick test_fig2;
    Alcotest.test_case "fig3" `Quick test_fig3;
    Alcotest.test_case "fig4" `Quick test_fig4;
    Alcotest.test_case "fig5" `Quick test_fig5;
    Alcotest.test_case "fig6" `Quick test_fig6;
    Alcotest.test_case "parity10 constants" `Quick test_parity10_constants;
    Alcotest.test_case "ablation omega" `Quick test_ablation_omega;
  ]
