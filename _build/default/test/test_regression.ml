(* Golden-value regression: pins the concrete numbers this reproduction
   reports for the paper's figures (EXPERIMENTS.md quotes them). Every
   quantity below is deterministic — closed forms, or Monte Carlo with
   fixed seeds — so any change here is a real behaviour change of the
   reproduction, not noise. *)

module Metrics = Nano_bounds.Metrics
module Figures = Nano_bounds.Figures

let close = Alcotest.float 1e-3

let test_fig3_reference_points () =
  let factor epsilon fanin =
    Nano_bounds.Redundancy_bound.redundancy_factor
      { Nano_bounds.Redundancy_bound.epsilon; delta = 0.01; fanin; sensitivity = 10 }
      ~error_free_size:21
  in
  Alcotest.check close "eps=0.001 k=2" 1.140 (factor 0.001 2);
  Alcotest.check close "eps=0.01 k=2" 1.224 (factor 0.01 2);
  Alcotest.check close "eps=0.01 k=3" 1.167 (factor 0.01 3);
  Alcotest.check close "eps=0.01 k=4" 1.137 (factor 0.01 4);
  Alcotest.check close "eps=0.1 k=2" 1.654 (factor 0.1 2);
  Alcotest.check (Alcotest.float 1.) "eps=0.3 k=4" 166.8 (factor 0.3 4)

let test_fig5_fig6_reference_points () =
  let b epsilon = Metrics.evaluate { Figures.parity10 with Metrics.epsilon } in
  let get = function Some v -> v | None -> Alcotest.fail "feasible" in
  Alcotest.check close "delay @0.01" 1.023 (get (b 0.01).Metrics.delay_ratio);
  Alcotest.check close "edp @0.01" 1.252
    (get (b 0.01).Metrics.energy_delay_ratio);
  Alcotest.check close "power @0.01" 1.196
    (get (b 0.01).Metrics.average_power_ratio);
  Alcotest.check close "delay @0.1" 2.705 (get (b 0.1).Metrics.delay_ratio);
  Alcotest.check close "power @0.1" 0.611
    (get (b 0.1).Metrics.average_power_ratio)

let suite_profile name =
  match Nano_circuits.Suite.find name with
  | None -> Alcotest.failf "missing suite entry %s" name
  | Some entry ->
    Nano_bounds.Profile.of_netlist
      (Nano_synth.Script.rugged_lite (entry.Nano_circuits.Suite.build ()))

let test_fig7_reference_rows () =
  (* The EXPERIMENTS.md excerpt rows for rca16 (default seeds). *)
  let p = suite_profile "rca16" in
  Alcotest.(check int) "rca16 S0" 48 p.Nano_bounds.Profile.size;
  Alcotest.(check int) "rca16 sensitivity" 33 p.Nano_bounds.Profile.sensitivity;
  let energy epsilon =
    (Nano_bounds.Benchmark_eval.evaluate_profile p ~epsilon)
      .Nano_bounds.Benchmark_eval.energy_ratio
  in
  Alcotest.check close "rca16 E @0.001" 1.268 (energy 0.001);
  Alcotest.check close "rca16 E @0.01" 1.429 (energy 0.01);
  Alcotest.check close "rca16 E @0.1" 2.253 (energy 0.1)

let test_headline_regression () =
  (* The three benchmarks EXPERIMENTS.md highlights. *)
  let overhead name =
    let p = suite_profile name in
    (Nano_bounds.Benchmark_eval.evaluate_profile p ~epsilon:0.01)
      .Nano_bounds.Benchmark_eval.energy_ratio
    -. 1.
  in
  Alcotest.check (Alcotest.float 5e-3) "parity16" 0.566 (overhead "parity16");
  Alcotest.check (Alcotest.float 5e-3) "rca32" 0.481 (overhead "rca32");
  Alcotest.check (Alcotest.float 5e-3) "mult16 low" 0.022 (overhead "mult16")

let test_theorem3_reference () =
  Alcotest.check close "W ratio eps=0.1 sw0=0.2" 0.562
    (Nano_bounds.Leakage.ratio_change ~epsilon:0.1 ~sw0:0.2);
  Alcotest.check close "W ratio eps=0.2 sw0=0.2" 0.388
    (Nano_bounds.Leakage.ratio_change ~epsilon:0.2 ~sw0:0.2)

let suite =
  [
    Alcotest.test_case "fig3 reference points" `Quick
      test_fig3_reference_points;
    Alcotest.test_case "fig5/6 reference points" `Quick
      test_fig5_fig6_reference_points;
    Alcotest.test_case "fig7 reference rows" `Quick test_fig7_reference_rows;
    Alcotest.test_case "headline regression" `Quick test_headline_regression;
    Alcotest.test_case "theorem 3 reference" `Quick test_theorem3_reference;
  ]
