module QM = Nano_synth.Quine_mccluskey
module Cube = Nano_logic.Cube
module TT = Nano_logic.Truth_table
module Std = Nano_logic.Std_functions

let cover_equals_table ~arity cover tt =
  TT.equal (Cube.Cover.to_truth_table ~arity cover) tt

let test_textbook_example () =
  (* Classic example: f = Σm(0, 1, 2, 5, 6, 7) over 3 vars minimizes to
     4 cubes... actually to 3: ~x2~x1, x1~x0? Use correctness checks
     instead of pinning a particular shape. *)
  let on_set = [ 0; 1; 2; 5; 6; 7 ] in
  let cover = QM.minimize ~arity:3 ~on_set ~dc_set:[] in
  let tt = TT.create ~arity:3 (fun a -> List.mem a on_set) in
  Alcotest.(check bool) "covers exactly" true (cover_equals_table ~arity:3 cover tt);
  Alcotest.(check bool) "minimized below minterm count" true
    (Cube.Cover.cube_count cover < 6)

let test_prime_implicants_xor () =
  (* XOR has no mergeable minterm pairs: primes = minterms. *)
  let primes = QM.prime_implicants ~arity:2 ~on_set:[ 1; 2 ] ~dc_set:[] in
  Alcotest.(check int) "two primes" 2 (List.length primes);
  List.iter
    (fun p -> Alcotest.(check int) "full literals" 2 (Cube.literal_count p))
    primes

let test_full_cover_collapses () =
  (* Tautology: all 2^n minterms merge into the universal cube. *)
  let on_set = List.init 16 (fun i -> i) in
  let cover = QM.minimize ~arity:4 ~on_set ~dc_set:[] in
  Alcotest.(check int) "single cube" 1 (Cube.Cover.cube_count cover);
  Alcotest.(check int) "no literals" 0 (Cube.Cover.literal_count cover)

let test_dont_cares_help () =
  (* f on {1}, dc on {3}: with the dc the cover is x0 (one literal);
     without it, x0 & ~x1 (two literals). *)
  let with_dc = QM.minimize ~arity:2 ~on_set:[ 1 ] ~dc_set:[ 3 ] in
  let without = QM.minimize ~arity:2 ~on_set:[ 1 ] ~dc_set:[] in
  Alcotest.(check int) "with dc: 1 literal" 1
    (Cube.Cover.literal_count with_dc);
  Alcotest.(check int) "without dc: 2 literals" 2
    (Cube.Cover.literal_count without);
  (* the dc cover must still never cover OFF minterms (0 and 2) *)
  Alcotest.(check bool) "off 0" false (Cube.Cover.eval with_dc 0);
  Alcotest.(check bool) "off 2" false (Cube.Cover.eval with_dc 2)

let test_empty_function () =
  Alcotest.(check int) "empty cover" 0
    (Cube.Cover.cube_count (QM.minimize ~arity:3 ~on_set:[] ~dc_set:[ 1 ]))

let test_majority_cover () =
  let tt = Std.majority ~arity:3 in
  let cover = QM.minimize_table tt in
  Alcotest.(check bool) "correct" true (cover_equals_table ~arity:3 cover tt);
  (* maj3 = three 2-literal cubes *)
  Alcotest.(check int) "three cubes" 3 (Cube.Cover.cube_count cover);
  Alcotest.(check int) "six literals" 6 (Cube.Cover.literal_count cover)

let test_cover_cost () =
  let cubes, literals =
    QM.cover_cost [ Cube.of_string "1-0"; Cube.of_string "--1" ]
  in
  Alcotest.(check int) "cubes" 2 cubes;
  Alcotest.(check int) "literals" 3 literals

let prop_minimize_correct =
  QCheck2.Test.make ~name:"QM cover equals original function" ~count:80
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 1 6))
    (fun (seed, arity_pick) ->
      let rng = Nano_util.Prng.create ~seed in
      let n = arity_pick in
      let tt = TT.create ~arity:n (fun _ -> Nano_util.Prng.bool rng) in
      cover_equals_table ~arity:n (QM.minimize_table tt) tt)

let prop_all_primes =
  QCheck2.Test.make ~name:"chosen cubes are prime implicants" ~count:40
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 2 5))
    (fun (seed, arity_pick) ->
      let rng = Nano_util.Prng.create ~seed in
      let n = arity_pick in
      let tt = TT.create ~arity:n (fun _ -> Nano_util.Prng.bool rng) in
      let on_set = TT.minterms tt in
      let primes = QM.prime_implicants ~arity:n ~on_set ~dc_set:[] in
      let cover = QM.minimize ~arity:n ~on_set ~dc_set:[] in
      List.for_all (fun c -> List.exists (Cube.equal c) primes) cover)

let prop_never_covers_offset =
  QCheck2.Test.make ~name:"cover avoids the OFF-set even with dc" ~count:60
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 2 5))
    (fun (seed, arity_pick) ->
      let rng = Nano_util.Prng.create ~seed in
      let n = arity_pick in
      let size = 1 lsl n in
      (* three-valued random function: on / off / dc *)
      let kind = Array.init size (fun _ -> Nano_util.Prng.int rng ~bound:3) in
      let collect v =
        Array.to_list kind
        |> List.mapi (fun i k -> (i, k))
        |> List.filter (fun (_, k) -> k = v)
        |> List.map fst
      in
      let on_set = collect 0 and dc_set = collect 1 in
      let cover = QM.minimize ~arity:n ~on_set ~dc_set in
      List.for_all (fun m -> Cube.Cover.eval cover m) on_set
      && List.for_all (fun m -> not (Cube.Cover.eval cover m)) (collect 2))

let suite =
  [
    Alcotest.test_case "textbook example" `Quick test_textbook_example;
    Alcotest.test_case "xor primes" `Quick test_prime_implicants_xor;
    Alcotest.test_case "tautology collapses" `Quick test_full_cover_collapses;
    Alcotest.test_case "don't cares help" `Quick test_dont_cares_help;
    Alcotest.test_case "empty function" `Quick test_empty_function;
    Alcotest.test_case "majority cover" `Quick test_majority_cover;
    Alcotest.test_case "cover cost" `Quick test_cover_cost;
    Helpers.qcheck prop_minimize_correct;
    Helpers.qcheck prop_all_primes;
    Helpers.qcheck prop_never_covers_offset;
  ]
