module Collapse = Nano_synth.Collapse
module Netlist = Nano_netlist.Netlist
module TT = Nano_logic.Truth_table
module Cube = Nano_logic.Cube

let test_to_truth_tables () =
  let n = Nano_circuits.Adders.ripple_carry ~width:2 in
  match Collapse.to_truth_tables n with
  | None -> Alcotest.fail "expected tables"
  | Some tables ->
    Alcotest.(check int) "one table per output" 3 (List.length tables);
    (* Check s0 against the reference truth table. The adder inputs are
       declared a0 a1 b0 b1 cin; Std layout differs, so check by direct
       evaluation instead. *)
    let s0 = List.assoc "s0" tables in
    for a = 0 to 31 do
      let bits =
        List.mapi
          (fun i name -> (name, (a lsr i) land 1 = 1))
          (Netlist.input_names n)
      in
      let expected = List.assoc "s0" (Netlist.eval n bits) in
      Alcotest.(check bool) "matches netlist" expected (TT.eval s0 a)
    done

let test_too_wide () =
  let n = Nano_circuits.Adders.ripple_carry ~width:16 in
  Alcotest.(check bool) "None for 33 inputs" true
    (Collapse.to_truth_tables ~max_inputs:14 n = None)

let test_of_covers_sharing () =
  (* Two outputs using the same product term must share it. *)
  let cover_a = [ Cube.of_string "11-" ] in
  let cover_b = [ Cube.of_string "11-"; Cube.of_string "--1" ] in
  let n =
    Collapse.of_covers ~name:"share" ~input_names:[ "x"; "y"; "z" ]
      [ ("a", cover_a); ("b", cover_b) ]
  in
  (* gates: one AND (shared), one OR -> 2 *)
  Alcotest.(check int) "shared product" 2 (Netlist.size n);
  let out = Netlist.eval n [ ("x", true); ("y", true); ("z", false) ] in
  Alcotest.(check bool) "a" true (List.assoc "a" out);
  Alcotest.(check bool) "b" true (List.assoc "b" out)

let test_of_covers_constants () =
  let n =
    Collapse.of_covers ~name:"consts" ~input_names:[ "x" ]
      [ ("zero", []); ("one", [ Cube.universe ~arity:1 ]) ]
  in
  let out = Netlist.eval n [ ("x", false) ] in
  Alcotest.(check bool) "zero" false (List.assoc "zero" out);
  Alcotest.(check bool) "one" true (List.assoc "one" out)

let test_resynthesize_equivalent () =
  let n = Nano_circuits.Trees.mux_tree ~select_bits:2 in
  match Collapse.resynthesize n with
  | None -> Alcotest.fail "should collapse"
  | Some rebuilt -> Helpers.assert_equivalent "mux resynthesis" n rebuilt

let test_resynthesize_reduces_redundant_logic () =
  (* Build a deliberately redundant circuit: or of x&y, x&y, x&y&z. *)
  let b = Netlist.Builder.create () in
  let x = Netlist.Builder.input b "x" in
  let y = Netlist.Builder.input b "y" in
  let z = Netlist.Builder.input b "z" in
  let t1 = Netlist.Builder.and2 b x y in
  let t2 = Netlist.Builder.and2 b y x in
  let t3 = Netlist.Builder.and2 b t1 z in
  Netlist.Builder.output b "o"
    (Netlist.Builder.or2 b (Netlist.Builder.or2 b t1 t2) t3);
  let n = Netlist.Builder.finish b in
  match Collapse.resynthesize n with
  | None -> Alcotest.fail "should collapse"
  | Some rebuilt ->
    Helpers.assert_equivalent "redundant" n rebuilt;
    (* the whole thing is just x & y *)
    Alcotest.(check int) "single gate" 1 (Netlist.size rebuilt)

let prop_resynthesis_equivalent =
  QCheck2.Test.make ~name:"collapse+QM+rebuild preserves function" ~count:40
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let n = Helpers.random_netlist ~seed ~inputs:5 ~gates:18 () in
      match Collapse.resynthesize n with
      | None -> false
      | Some rebuilt -> begin
        match Nano_synth.Equiv.check n rebuilt with
        | Nano_synth.Equiv.Equivalent -> true
        | Nano_synth.Equiv.Counterexample _ -> false
      end)

let suite =
  [
    Alcotest.test_case "to truth tables" `Quick test_to_truth_tables;
    Alcotest.test_case "too wide" `Quick test_too_wide;
    Alcotest.test_case "of_covers sharing" `Quick test_of_covers_sharing;
    Alcotest.test_case "of_covers constants" `Quick test_of_covers_constants;
    Alcotest.test_case "resynthesize equivalent" `Quick
      test_resynthesize_equivalent;
    Alcotest.test_case "resynthesize reduces" `Quick
      test_resynthesize_reduces_redundant_logic;
    Helpers.qcheck prop_resynthesis_equivalent;
  ]
