module Stats = Nano_util.Stats

let test_empty () =
  let t = Stats.create () in
  Alcotest.(check int) "count" 0 (Stats.count t);
  Helpers.check_float "mean" 0. (Stats.mean t);
  Helpers.check_float "variance" 0. (Stats.variance t);
  Helpers.check_invalid "min" (fun () -> Stats.min_value t);
  Helpers.check_invalid "summary" (fun () -> Stats.summary t)

let test_single () =
  let t = Stats.create () in
  Stats.add t 3.5;
  Helpers.check_float "mean" 3.5 (Stats.mean t);
  Helpers.check_float "variance" 0. (Stats.variance t);
  Helpers.check_float "min" 3.5 (Stats.min_value t);
  Helpers.check_float "max" 3.5 (Stats.max_value t)

let test_known_values () =
  let t = Stats.create () in
  Stats.add_many t [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Helpers.check_float "mean" 5. (Stats.mean t);
  (* Sample variance of this classic set is 32/7. *)
  Helpers.check_loose "variance" (32. /. 7.) (Stats.variance t);
  Helpers.check_float "min" 2. (Stats.min_value t);
  Helpers.check_float "max" 9. (Stats.max_value t);
  let s = Stats.summary t in
  Alcotest.(check int) "summary n" 8 s.Stats.n

let test_confidence_shrinks () =
  let wide = Stats.create () in
  let narrow = Stats.create () in
  let rng = Nano_util.Prng.create ~seed:5 in
  for _ = 1 to 100 do
    Stats.add wide (Nano_util.Prng.float rng)
  done;
  for _ = 1 to 10000 do
    Stats.add narrow (Nano_util.Prng.float rng)
  done;
  Alcotest.(check bool) "more samples tighter ci" true
    (Stats.confidence95 narrow < Stats.confidence95 wide)

let prop_mean_bounded =
  QCheck2.Test.make ~name:"mean lies within [min, max]"
    QCheck2.Gen.(list_size (int_range 1 50) (float_range (-100.) 100.))
    (fun xs ->
      let t = Stats.create () in
      Stats.add_many t xs;
      Stats.mean t >= Stats.min_value t -. 1e-9
      && Stats.mean t <= Stats.max_value t +. 1e-9)

let prop_welford_matches_naive =
  QCheck2.Test.make ~name:"Welford variance matches naive computation"
    QCheck2.Gen.(list_size (int_range 2 60) (float_range (-10.) 10.))
    (fun xs ->
      let t = Stats.create () in
      Stats.add_many t xs;
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0. xs /. n in
      let naive =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs
        /. (n -. 1.)
      in
      Nano_util.Math_ext.approx_equal ~tol:1e-6 naive (Stats.variance t))

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "single" `Quick test_single;
    Alcotest.test_case "known values" `Quick test_known_values;
    Alcotest.test_case "confidence shrinks" `Quick test_confidence_shrinks;
    Helpers.qcheck prop_mean_bounded;
    Helpers.qcheck prop_welford_matches_naive;
  ]
