module Factor = Nano_synth.Factor
module Cube = Nano_logic.Cube
module TT = Nano_logic.Truth_table
module QM = Nano_synth.Quine_mccluskey

let cover_of_strings strings = List.map Cube.of_string strings

let test_textbook_factoring () =
  (* ab + ac + ad over 4 vars = a(b + c + d): 6 literals -> 4. *)
  let cover = cover_of_strings [ "11--"; "1-1-"; "1--1" ] in
  let expr = Factor.quick_factor ~arity:4 cover in
  Alcotest.(check int) "4 literals" 4 (Factor.literal_count expr);
  (* and it is still the same function *)
  for a = 0 to 15 do
    Alcotest.(check bool)
      (Printf.sprintf "assignment %d" a)
      (Cube.Cover.eval cover a)
      (Factor.eval expr (fun v -> (a lsr v) land 1 = 1))
  done

let test_single_cube () =
  let expr = Factor.quick_factor ~arity:3 (cover_of_strings [ "10-" ]) in
  Alcotest.(check int) "two literals" 2 (Factor.literal_count expr);
  Alcotest.(check int) "depth 1" 1 (Factor.depth expr)

let test_constants () =
  Alcotest.(check bool) "empty cover is false" true
    (Factor.quick_factor ~arity:2 [] = Factor.Const false);
  Alcotest.(check bool) "universal cube is true" true
    (Factor.quick_factor ~arity:2 [ Cube.universe ~arity:2 ] = Factor.Const true)

let test_no_sharing_stays_two_level () =
  (* Disjoint-support cubes cannot factor: x0x1 + x2x3. *)
  let cover = cover_of_strings [ "11--"; "--11" ] in
  let expr = Factor.quick_factor ~arity:4 cover in
  Alcotest.(check int) "literals unchanged" 4 (Factor.literal_count expr)

let test_to_string () =
  let expr = Factor.quick_factor ~arity:2 (cover_of_strings [ "10" ]) in
  Alcotest.(check string) "rendering" "(x0 & ~x1)" (Factor.to_string expr)

let test_netlist_construction () =
  let covers =
    [ ("f", cover_of_strings [ "11--"; "1-1-"; "1--1" ]) ]
  in
  let netlist =
    Factor.netlist_of_covers ~name:"fact" ~input_names:[ "a"; "b"; "c"; "d" ]
      covers
  in
  (* a & (b | c | d): OR tree (2 gates) + 1 AND = 3 gates, versus 3 ANDs
     + OR tree (2) = 5-6 two-level. *)
  Alcotest.(check int) "3 gates" 3 (Nano_netlist.Netlist.size netlist);
  let eval a b c d =
    List.assoc "f"
      (Nano_netlist.Netlist.eval netlist
         [ ("a", a); ("b", b); ("c", c); ("d", d) ])
  in
  Alcotest.(check bool) "a(b)" true (eval true true false false);
  Alcotest.(check bool) "a alone" false (eval true false false false);
  Alcotest.(check bool) "no a" false (eval false true true true)

let test_factoring_beats_two_level_in_flow () =
  (* A two-level circuit with heavy literal sharing must come out of
     rugged_lite smaller than its SOP form. f = a(b+c+d+e) written as
     four product terms. *)
  let b = Nano_netlist.Netlist.Builder.create () in
  let module B = Nano_netlist.Netlist.Builder in
  let a = B.input b "a" in
  let xs = List.init 4 (fun i -> B.input b (Printf.sprintf "x%d" i)) in
  let terms = List.map (fun x -> B.and2 b a x) xs in
  B.output b "f" (B.reduce b Nano_netlist.Gate.Or terms);
  let sop = B.finish b in
  let mapped = Nano_synth.Script.rugged_lite sop in
  Helpers.assert_equivalent "flow" sop mapped;
  (* factored: OR tree (3 gates fanin<=3: 2 gates) + AND = ~3 gates,
     versus 4 AND + OR tree = ~6. *)
  Alcotest.(check bool)
    (Printf.sprintf "smaller than SOP (%d < %d)"
       (Nano_netlist.Netlist.size mapped)
       (Nano_netlist.Netlist.size sop))
    true
    (Nano_netlist.Netlist.size mapped < Nano_netlist.Netlist.size sop)

let prop_factoring_preserves_function =
  QCheck2.Test.make ~name:"quick_factor evaluates like the cover" ~count:100
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 1 6))
    (fun (seed, arity_pick) ->
      let rng = Nano_util.Prng.create ~seed in
      let n = arity_pick in
      let tt = TT.create ~arity:n (fun _ -> Nano_util.Prng.bool rng) in
      let cover = QM.minimize_table tt in
      let expr = Factor.quick_factor ~arity:n cover in
      let ok = ref true in
      for a = 0 to (1 lsl n) - 1 do
        if Factor.eval expr (fun v -> (a lsr v) land 1 = 1) <> TT.eval tt a
        then ok := false
      done;
      !ok)

let prop_factoring_never_adds_literals =
  QCheck2.Test.make ~name:"factored literals <= SOP literals" ~count:100
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 1 6))
    (fun (seed, arity_pick) ->
      let rng = Nano_util.Prng.create ~seed in
      let n = arity_pick in
      let tt = TT.create ~arity:n (fun _ -> Nano_util.Prng.bool rng) in
      let cover = QM.minimize_table tt in
      let expr = Factor.quick_factor ~arity:n cover in
      Factor.literal_count expr <= Cube.Cover.literal_count cover)

let suite =
  [
    Alcotest.test_case "textbook factoring" `Quick test_textbook_factoring;
    Alcotest.test_case "single cube" `Quick test_single_cube;
    Alcotest.test_case "constants" `Quick test_constants;
    Alcotest.test_case "no sharing" `Quick test_no_sharing_stays_two_level;
    Alcotest.test_case "to_string" `Quick test_to_string;
    Alcotest.test_case "netlist construction" `Quick test_netlist_construction;
    Alcotest.test_case "factoring in the flow" `Quick
      test_factoring_beats_two_level_in_flow;
    Helpers.qcheck prop_factoring_preserves_function;
    Helpers.qcheck prop_factoring_never_adds_literals;
  ]
