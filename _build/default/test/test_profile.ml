module Profile = Nano_bounds.Profile
module Netlist = Nano_netlist.Netlist

let test_of_netlist_counts () =
  let n = Nano_circuits.Adders.ripple_carry ~width:4 in
  let p = Profile.of_netlist n in
  Alcotest.(check int) "inputs" 9 p.Profile.inputs;
  Alcotest.(check int) "outputs" 5 p.Profile.outputs;
  Alcotest.(check int) "size" (Netlist.size n) p.Profile.size;
  Alcotest.(check int) "depth" (Netlist.depth n) p.Profile.depth;
  (* every input flip changes some adder output *)
  Alcotest.(check int) "sensitivity" 9 p.Profile.sensitivity;
  Helpers.check_in_range "sw0 plausible" ~lo:0.2 ~hi:0.7 p.Profile.sw0

let test_activity_methods_agree () =
  let n = Nano_circuits.Trees.parity_tree ~inputs:8 ~fanin:2 in
  let mc =
    Profile.of_netlist
      ~activity:(Profile.Monte_carlo { seed = 1; vectors = 32768 })
      n
  in
  let ex = Profile.of_netlist ~activity:Profile.Exact_bdd n in
  Helpers.check_in_range "MC close to exact"
    ~lo:(ex.Profile.sw0 -. 0.02)
    ~hi:(ex.Profile.sw0 +. 0.02)
    mc.Profile.sw0;
  (* parity tree gates all have sw = 1/2 exactly *)
  Helpers.check_float "exact parity activity" 0.5 ex.Profile.sw0

let test_to_scenario () =
  let n = Nano_circuits.Adders.ripple_carry ~width:4 in
  let p = Profile.of_netlist n in
  let s = Profile.to_scenario p ~epsilon:0.01 ~delta:0.01 ~leakage_share0:0.5 in
  Alcotest.(check bool) "valid scenario" true
    (Nano_bounds.Metrics.scenario_valid s);
  (* rca uses 2- and 3-input gates; average rounds to 2. *)
  Alcotest.(check int) "fanin" 2 s.Nano_bounds.Metrics.fanin;
  Alcotest.(check int) "sensitivity" 9 s.Nano_bounds.Metrics.sensitivity

let test_degenerate_profile_clamped () =
  (* A constant-output circuit has sw0 = 0 on its only gate-path; the
     scenario must clamp rather than crash. *)
  let b = Netlist.Builder.create () in
  let x = Netlist.Builder.input b "x" in
  let dead = Netlist.Builder.and2 b x (Netlist.Builder.not_ b x) in
  Netlist.Builder.output b "o" dead;
  let n = Netlist.Builder.finish b in
  let p = Profile.of_netlist n in
  let s = Profile.to_scenario p ~epsilon:0.01 ~delta:0.01 ~leakage_share0:0.5 in
  Alcotest.(check bool) "still valid" true
    (Nano_bounds.Metrics.scenario_valid s)

let test_pp () =
  let p = Profile.of_netlist (Nano_circuits.Iscas_like.c17 ()) in
  let s = Format.asprintf "%a" Profile.pp p in
  Alcotest.(check bool) "mentions name" true
    (String.length s > 3 && String.sub s 0 3 = "c17")

let suite =
  [
    Alcotest.test_case "of_netlist counts" `Quick test_of_netlist_counts;
    Alcotest.test_case "activity methods agree" `Quick
      test_activity_methods_agree;
    Alcotest.test_case "to_scenario" `Quick test_to_scenario;
    Alcotest.test_case "degenerate clamped" `Quick
      test_degenerate_profile_clamped;
    Alcotest.test_case "pp" `Quick test_pp;
  ]
