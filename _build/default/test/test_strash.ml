module Strash = Nano_synth.Strash
module Netlist = Nano_netlist.Netlist
module B = Nano_netlist.Netlist.Builder
module Gate = Nano_netlist.Gate

let test_shares_identical_gates () =
  let b = B.create () in
  let x = B.input b "x" in
  let y = B.input b "y" in
  let a1 = B.and2 b x y in
  let a2 = B.and2 b x y in
  B.output b "o" (B.or2 b a1 a2);
  let n = Strash.run (B.finish b) in
  (* or(a, a) -> a, so only the single AND remains. *)
  Alcotest.(check int) "one gate" 1 (Netlist.size n)

let test_commutative_sharing () =
  let b = B.create () in
  let x = B.input b "x" in
  let y = B.input b "y" in
  let a1 = B.and2 b x y in
  let a2 = B.and2 b y x in
  B.output b "o" (B.xor2 b a1 a2);
  let n = Strash.run (B.finish b) in
  (* and(x,y) = and(y,x), xor(a,a) = 0. *)
  Alcotest.(check int) "constant folded" 0 (Netlist.size n);
  Alcotest.(check bool) "output is false" true
    (not (List.assoc "o" (Netlist.eval n [ ("x", true); ("y", true) ])))

let test_constant_folding () =
  let b = B.create () in
  let x = B.input b "x" in
  let zero = B.const b false in
  let one = B.const b true in
  B.output b "and0" (B.and2 b x zero);
  B.output b "and1" (B.and2 b x one);
  B.output b "or1" (B.or2 b x one);
  B.output b "xor1" (B.xor2 b x one);
  let n = Strash.run (B.finish b) in
  let out v = Netlist.eval n [ ("x", v) ] in
  List.iter
    (fun v ->
      Alcotest.(check bool) "and0" false (List.assoc "and0" (out v));
      Alcotest.(check bool) "and1" v (List.assoc "and1" (out v));
      Alcotest.(check bool) "or1" true (List.assoc "or1" (out v));
      Alcotest.(check bool) "xor1" (not v) (List.assoc "xor1" (out v)))
    [ true; false ];
  (* and1 should be a wire, xor1 one inverter: 1 gate total *)
  Alcotest.(check int) "only the inverter" 1 (Netlist.size n)

let test_double_negation () =
  let b = B.create () in
  let x = B.input b "x" in
  B.output b "o" (B.not_ b (B.not_ b x));
  let n = Strash.run (B.finish b) in
  Alcotest.(check int) "no gates" 0 (Netlist.size n)

let test_complement_identities () =
  let b = B.create () in
  let x = B.input b "x" in
  let nx = B.not_ b x in
  B.output b "contradiction" (B.and2 b x nx);
  B.output b "tautology" (B.or2 b x nx);
  B.output b "xor_comp" (B.xor2 b x nx);
  let n = Strash.run (B.finish b) in
  let out = Netlist.eval n [ ("x", true) ] in
  Alcotest.(check bool) "x & ~x" false (List.assoc "contradiction" out);
  Alcotest.(check bool) "x | ~x" true (List.assoc "tautology" out);
  Alcotest.(check bool) "x ^ ~x" true (List.assoc "xor_comp" out);
  (* Everything folds to constants; at most the shared inverter may
     linger as dead support for them. *)
  Alcotest.(check bool) "at most the inverter" true (Netlist.size n <= 1)

let test_dead_logic_removed () =
  let b = B.create () in
  let x = B.input b "x" in
  let y = B.input b "y" in
  let _dead = B.xor2 b x y in
  let _dead2 = B.and2 b x y in
  B.output b "o" (B.not_ b x);
  let n = Strash.run (B.finish b) in
  Alcotest.(check int) "only the live inverter" 1 (Netlist.size n);
  (* inputs survive for interface stability *)
  Alcotest.(check (list string)) "inputs kept" [ "x"; "y" ]
    (Netlist.input_names n)

let test_majority_simplifications () =
  let b = B.create () in
  let x = B.input b "x" in
  let y = B.input b "y" in
  let one = B.const b true in
  let zero = B.const b false in
  B.output b "maj1xy" (B.maj3 b one x y);
  B.output b "maj0xy" (B.maj3 b zero x y);
  B.output b "majxxy" (B.maj3 b x x y);
  let n = Strash.run (B.finish b) in
  List.iter
    (fun (vx, vy) ->
      let out = Netlist.eval n [ ("x", vx); ("y", vy) ] in
      Alcotest.(check bool) "maj(1,x,y)=x|y" (vx || vy)
        (List.assoc "maj1xy" out);
      Alcotest.(check bool) "maj(0,x,y)=x&y" (vx && vy)
        (List.assoc "maj0xy" out);
      Alcotest.(check bool) "maj(x,x,y)=x" vx (List.assoc "majxxy" out))
    [ (true, true); (true, false); (false, true); (false, false) ]

let test_idempotent () =
  let n = Helpers.random_netlist ~seed:99 ~inputs:5 ~gates:40 () in
  let once = Strash.run n in
  let twice = Strash.run once in
  Alcotest.(check int) "size stable" (Netlist.size once) (Netlist.size twice)

let prop_preserves_function =
  QCheck2.Test.make ~name:"strash preserves the function" ~count:100
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let n = Helpers.random_netlist ~seed ~inputs:5 ~gates:30 () in
      match Nano_synth.Equiv.check n (Strash.run n) with
      | Nano_synth.Equiv.Equivalent -> true
      | Nano_synth.Equiv.Counterexample _ -> false)

let prop_never_grows =
  QCheck2.Test.make ~name:"strash never increases size" ~count:100
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let n = Helpers.random_netlist ~seed ~inputs:5 ~gates:30 () in
      Netlist.size (Strash.run n) <= Netlist.size n)

let suite =
  [
    Alcotest.test_case "shares identical gates" `Quick
      test_shares_identical_gates;
    Alcotest.test_case "commutative sharing" `Quick test_commutative_sharing;
    Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "double negation" `Quick test_double_negation;
    Alcotest.test_case "complement identities" `Quick
      test_complement_identities;
    Alcotest.test_case "dead logic removed" `Quick test_dead_logic_removed;
    Alcotest.test_case "majority simplifications" `Quick
      test_majority_simplifications;
    Alcotest.test_case "idempotent" `Quick test_idempotent;
    Helpers.qcheck prop_preserves_function;
    Helpers.qcheck prop_never_grows;
  ]
