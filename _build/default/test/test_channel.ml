module Channel = Nano_faults.Channel

let test_create_domain () =
  ignore (Channel.create ~epsilon:0.);
  ignore (Channel.create ~epsilon:0.5);
  Helpers.check_invalid "negative" (fun () -> Channel.create ~epsilon:(-0.1));
  Helpers.check_invalid "above half" (fun () -> Channel.create ~epsilon:0.6)

let test_transfer_probability () =
  let c = Channel.create ~epsilon:0.1 in
  Helpers.check_float "p=1" 0.9 (Channel.transfer_probability c 1.);
  Helpers.check_float "p=0" 0.1 (Channel.transfer_probability c 0.);
  Helpers.check_float "p=1/2 invariant" 0.5 (Channel.transfer_probability c 0.5)

let test_transfer_activity_theorem1 () =
  let c = Channel.create ~epsilon:0.1 in
  (* sw' = 0.64 sw + 0.18 *)
  Helpers.check_float "sw=0" 0.18 (Channel.transfer_activity c 0.);
  Helpers.check_float "sw=0.5 fixed point" 0.5 (Channel.transfer_activity c 0.5);
  Helpers.check_float "sw=1" 0.82 (Channel.transfer_activity c 1.)

let test_activity_probability_consistency () =
  (* Theorem 1 must agree with pushing p through the channel and
     recomputing sw = 2p(1-p). *)
  let c = Channel.create ~epsilon:0.07 in
  List.iter
    (fun p ->
      let sw = 2. *. p *. (1. -. p) in
      let p' = Channel.transfer_probability c p in
      let sw' = 2. *. p' *. (1. -. p') in
      Helpers.check_loose "consistent" sw' (Channel.transfer_activity c sw))
    [ 0.; 0.1; 0.3; 0.5; 0.77; 1. ]

let test_compose () =
  let a = Channel.create ~epsilon:0.1 in
  let b = Channel.create ~epsilon:0.2 in
  let c = Channel.compose a b in
  (* 0.1*0.8 + 0.2*0.9 = 0.26 *)
  Helpers.check_float "composed epsilon" 0.26 (Channel.epsilon c);
  (* identity element *)
  let id = Channel.create ~epsilon:0. in
  Helpers.check_float "identity" 0.1 (Channel.epsilon (Channel.compose a id));
  (* composing with a coin flip stays a coin flip *)
  let coin = Channel.create ~epsilon:0.5 in
  Helpers.check_float "absorbing" 0.5 (Channel.epsilon (Channel.compose a coin))

let test_apply_bit_statistics () =
  let c = Channel.create ~epsilon:0.25 in
  let rng = Nano_util.Prng.create ~seed:7 in
  let flips = ref 0 in
  let n = 40000 in
  for _ = 1 to n do
    if not (Channel.apply_bit c rng true) then incr flips
  done;
  Helpers.check_in_range "flip rate" ~lo:0.235 ~hi:0.265
    (float_of_int !flips /. float_of_int n)

let test_noise_word_density () =
  let c = Channel.create ~epsilon:0.125 in
  let rng = Nano_util.Prng.create ~seed:8 in
  let total = ref 0 in
  let words = 4000 in
  for _ = 1 to words do
    total := !total + Nano_util.Bits.popcount64 (Channel.noise_word c rng)
  done;
  Helpers.check_in_range "density" ~lo:0.118 ~hi:0.132
    (float_of_int !total /. float_of_int (64 * words))

let test_capacity () =
  Helpers.check_float "perfect channel" 1.
    (Channel.capacity (Channel.create ~epsilon:0.));
  Helpers.check_float "useless channel" 0.
    (Channel.capacity (Channel.create ~epsilon:0.5));
  Helpers.check_in_range "mid" ~lo:0.5 ~hi:0.55
    (Channel.capacity (Channel.create ~epsilon:0.11))

let prop_transfer_activity_contraction =
  QCheck2.Test.make ~name:"activity map contracts toward 1/2" ~count:200
    QCheck2.Gen.(pair (float_range 0.001 0.499) (float_range 0. 1.))
    (fun (epsilon, sw) ->
      let c = Channel.create ~epsilon in
      let sw' = Channel.transfer_activity c sw in
      Float.abs (sw' -. 0.5) <= Float.abs (sw -. 0.5) +. 1e-12)

let suite =
  [
    Alcotest.test_case "create domain" `Quick test_create_domain;
    Alcotest.test_case "transfer probability" `Quick test_transfer_probability;
    Alcotest.test_case "transfer activity (Thm 1)" `Quick
      test_transfer_activity_theorem1;
    Alcotest.test_case "activity/probability consistency" `Quick
      test_activity_probability_consistency;
    Alcotest.test_case "compose" `Quick test_compose;
    Alcotest.test_case "apply_bit statistics" `Quick test_apply_bit_statistics;
    Alcotest.test_case "noise word density" `Quick test_noise_word_density;
    Alcotest.test_case "capacity" `Quick test_capacity;
    Helpers.qcheck prop_transfer_activity_contraction;
  ]
