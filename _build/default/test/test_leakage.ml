module Leakage = Nano_bounds.Leakage

let test_identities () =
  (* Figure 4's anchor points: ratio 1 at sw0 = 1/2 or eps = 0. *)
  Helpers.check_float "sw0=1/2" 1. (Leakage.ratio_change ~epsilon:0.3 ~sw0:0.5);
  Helpers.check_float "eps=0" 1. (Leakage.ratio_change ~epsilon:0. ~sw0:0.2)

let test_direction () =
  (* sw0 < 1/2: activity goes up, devices idle less, leakage share
     drops. sw0 > 1/2: the opposite. *)
  Alcotest.(check bool) "low activity -> ratio < 1" true
    (Leakage.ratio_change ~epsilon:0.1 ~sw0:0.2 < 1.);
  Alcotest.(check bool) "high activity -> ratio > 1" true
    (Leakage.ratio_change ~epsilon:0.1 ~sw0:0.8 > 1.)

let test_closed_form () =
  (* Independent derivation: W = (1-sw)/sw, so the ratio equals
     ((1-sw')/sw') / ((1-sw0)/sw0). *)
  let epsilon = 0.07 and sw0 = 0.3 in
  let sw' = Nano_bounds.Switching.noisy_activity ~epsilon sw0 in
  let expected = (1. -. sw') /. sw' /. ((1. -. sw0) /. sw0) in
  Helpers.check_loose "matches derivation" expected
    (Leakage.ratio_change ~epsilon ~sw0)

let test_symmetry () =
  (* Theorem 3 under sw0 <-> 1-sw0 inverts the ratio. *)
  let epsilon = 0.12 in
  let a = Leakage.ratio_change ~epsilon ~sw0:0.3 in
  let b = Leakage.ratio_change ~epsilon ~sw0:0.7 in
  Helpers.check_loose "reciprocal" 1. (a *. b)

let test_noisy_ratio_and_share () =
  let w = Leakage.noisy_ratio ~epsilon:0.1 ~sw0:0.4 ~w0:1.0 in
  Alcotest.(check bool) "below baseline" true (w < 1.);
  Helpers.check_float "share of w=1" 0.5 (Leakage.leakage_share ~w:1.);
  Helpers.check_float "share of w=3" 0.75 (Leakage.leakage_share ~w:3.);
  Helpers.check_loose "inverse" 3. (Leakage.ratio_of_share 0.75)

let test_domain () =
  Helpers.check_invalid "sw0=0" (fun () ->
      ignore (Leakage.ratio_change ~epsilon:0.1 ~sw0:0.));
  Helpers.check_invalid "sw0=1" (fun () ->
      ignore (Leakage.ratio_change ~epsilon:0.1 ~sw0:1.));
  Helpers.check_invalid "negative w0" (fun () ->
      ignore (Leakage.noisy_ratio ~epsilon:0.1 ~sw0:0.5 ~w0:(-1.)));
  Helpers.check_invalid "share 1" (fun () ->
      ignore (Leakage.ratio_of_share 1.))

let prop_monotone_away_from_one =
  (* Figure 4: more noise pushes the ratio monotonically away from 1 —
     downward when sw0 < 1/2 (devices idle less), upward when
     sw0 > 1/2. *)
  QCheck2.Test.make ~name:"ratio moves away from 1 monotonically" ~count:300
    QCheck2.Gen.(triple (float_range 0.01 0.24) (float_range 1.2 2.)
                   (float_range 0.05 0.95))
    (fun (eps, factor, sw0) ->
      QCheck2.assume (Float.abs (sw0 -. 0.5) > 0.01);
      let r1 = Leakage.ratio_change ~epsilon:eps ~sw0 in
      let r2 =
        Leakage.ratio_change ~epsilon:(Float.min 0.5 (eps *. factor)) ~sw0
      in
      if sw0 < 0.5 then r2 <= r1 +. 1e-12 && r1 <= 1. +. 1e-12
      else r2 >= r1 -. 1e-12 && r1 >= 1. -. 1e-12)

let prop_share_roundtrip =
  QCheck2.Test.make ~name:"share/ratio roundtrip" ~count:200
    QCheck2.Gen.(float_range 0. 50.)
    (fun w ->
      Nano_util.Math_ext.approx_equal ~tol:1e-9 w
        (Leakage.ratio_of_share (Leakage.leakage_share ~w)))

let suite =
  [
    Alcotest.test_case "identities" `Quick test_identities;
    Alcotest.test_case "direction" `Quick test_direction;
    Alcotest.test_case "closed form" `Quick test_closed_form;
    Alcotest.test_case "symmetry" `Quick test_symmetry;
    Alcotest.test_case "noisy ratio and share" `Quick test_noisy_ratio_and_share;
    Alcotest.test_case "domain" `Quick test_domain;
    Helpers.qcheck prop_monotone_away_from_one;
    Helpers.qcheck prop_share_roundtrip;
  ]
