  $ nanobound bounds -e 0.01 -d 0.01
  $ nanobound bounds -e 0.1 -k 3 -s 10 --size 21 -n 10
  $ nanobound equiv rca8 cla16
  $ nanobound equiv rca16 csel16 --backend bdd
  $ nanobound equiv c17 c17 --backend sat
  $ nanobound suite
  $ nanobound analyze no_such_thing
  $ nanobound bounds -e 0.1 --explain | head -8
