test/test_stats.ml: Alcotest Helpers List Nano_util QCheck2
