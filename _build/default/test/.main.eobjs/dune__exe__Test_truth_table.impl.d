test/test_truth_table.ml: Alcotest Helpers Nano_logic Nano_util QCheck2
