test/test_dimacs.ml: Alcotest Filename Nano_circuits Nano_sat Sys
