test/test_sweep.ml: Alcotest Helpers List Nano_util QCheck2
