test/test_energy_weighted.ml: Alcotest Array Helpers Nano_circuits Nano_energy Nano_netlist Nano_sim Nano_util
