test/test_collapse.ml: Alcotest Helpers List Nano_circuits Nano_logic Nano_netlist Nano_synth QCheck2
