test/test_math_ext.ml: Alcotest Helpers Nano_util QCheck2
