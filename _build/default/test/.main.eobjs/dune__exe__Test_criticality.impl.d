test/test_criticality.ml: Alcotest Array Helpers List Nano_circuits Nano_faults Nano_netlist Printf
