test/test_crossover.ml: Alcotest Float Helpers Nano_bounds
