test/test_bits.ml: Alcotest Helpers Int64 List Nano_util QCheck2
