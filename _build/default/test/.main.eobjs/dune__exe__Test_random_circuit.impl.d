test/test_random_circuit.ml: Alcotest Helpers List Nano_circuits Nano_netlist QCheck2
