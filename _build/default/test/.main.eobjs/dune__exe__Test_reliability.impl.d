test/test_reliability.ml: Alcotest Array Float Helpers List Nano_circuits Nano_faults Nano_netlist Nano_sim Nano_util QCheck2
