test/main.mli:
