test/test_voltage_tradeoff.ml: Alcotest Helpers Nano_bounds Nano_energy QCheck2
