test/test_adders.ml: Alcotest Helpers List Nano_circuits Nano_netlist Printf QCheck2
