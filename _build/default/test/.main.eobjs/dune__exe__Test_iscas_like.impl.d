test/test_iscas_like.ml: Alcotest Array Helpers Int64 List Nano_circuits Nano_netlist Nano_util Printf QCheck2
