test/test_energy.ml: Alcotest Helpers Nano_circuits Nano_energy QCheck2
