test/test_switching.ml: Alcotest Float Helpers List Nano_bounds Nano_faults Nano_netlist QCheck2
