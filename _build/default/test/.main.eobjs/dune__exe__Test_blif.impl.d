test/test_blif.ml: Alcotest Format Helpers List Nano_blif Nano_circuits Nano_netlist Nano_synth QCheck2 String
