test/test_netlist.ml: Alcotest Array Helpers Int64 List Nano_netlist Nano_util Printf QCheck2 String
