test/test_factor.ml: Alcotest Helpers List Nano_logic Nano_netlist Nano_synth Nano_util Printf QCheck2
