test/test_quine_mccluskey.ml: Alcotest Array Helpers List Nano_logic Nano_synth Nano_util QCheck2
