test/test_script.ml: Alcotest Helpers List Nano_circuits Nano_netlist Nano_synth QCheck2
