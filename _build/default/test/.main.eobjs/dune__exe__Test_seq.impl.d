test/test_seq.ml: Alcotest Array Helpers List Nano_bounds Nano_circuits Nano_energy Nano_netlist Nano_seq Nano_synth Printf QCheck2 String
