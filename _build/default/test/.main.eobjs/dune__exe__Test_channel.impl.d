test/test_channel.ml: Alcotest Float Helpers List Nano_faults Nano_util QCheck2
