test/test_nmr.ml: Alcotest Helpers List Nano_circuits Nano_faults Nano_netlist Nano_redundancy QCheck2
