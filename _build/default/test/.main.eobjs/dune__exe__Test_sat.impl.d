test/test_sat.ml: Alcotest Array Helpers List Nano_circuits Nano_netlist Nano_sat Nano_synth Nano_util Printf QCheck2
