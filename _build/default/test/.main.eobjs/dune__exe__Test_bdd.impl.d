test/test_bdd.ml: Alcotest Helpers List Nano_bdd Nano_logic Nano_util QCheck2 String
