test/test_activity.ml: Alcotest Array Float Helpers Nano_netlist Nano_sim QCheck2
