test/test_multiplexing.ml: Alcotest Helpers List Nano_netlist Nano_redundancy Nano_util Printf QCheck2
