test/test_timing.ml: Alcotest Array Helpers List Nano_circuits Nano_netlist Nano_synth Printf QCheck2
