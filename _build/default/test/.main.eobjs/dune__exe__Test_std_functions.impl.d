test/test_std_functions.ml: Alcotest Helpers Nano_logic QCheck2
