test/test_suite_circuits.ml: Alcotest List Nano_circuits Nano_netlist
