test/test_profile.ml: Alcotest Format Helpers Nano_bounds Nano_circuits Nano_netlist String
