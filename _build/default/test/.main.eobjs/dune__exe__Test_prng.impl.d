test/test_prng.ml: Alcotest Array Fun Helpers Nano_util
