test/test_benchmark_eval.ml: Alcotest Helpers List Nano_bounds Nano_circuits Nano_synth
