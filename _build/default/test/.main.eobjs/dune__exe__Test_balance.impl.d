test/test_balance.ml: Alcotest Helpers List Nano_circuits Nano_netlist Nano_synth Printf QCheck2
