test/test_depth_bound.ml: Alcotest Float Helpers Nano_bounds Nano_util QCheck2
