test/test_trees.ml: Alcotest Fun Helpers List Nano_circuits Nano_netlist Printf QCheck2
