test/test_leakage.ml: Alcotest Float Helpers Nano_bounds Nano_util QCheck2
