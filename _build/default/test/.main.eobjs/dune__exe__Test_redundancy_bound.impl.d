test/test_redundancy_bound.ml: Alcotest Float Helpers List Nano_bounds Nano_util QCheck2
