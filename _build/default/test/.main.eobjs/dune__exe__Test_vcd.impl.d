test/test_vcd.ml: Alcotest Filename Helpers List Nano_seq Printf String Sys
