test/test_report.ml: Alcotest Filename Float List Nano_report String Sys
