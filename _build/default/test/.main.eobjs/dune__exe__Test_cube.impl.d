test/test_cube.ml: Alcotest Helpers Nano_logic Nano_util QCheck2
