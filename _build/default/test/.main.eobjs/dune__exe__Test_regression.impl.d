test/test_regression.ml: Alcotest Nano_bounds Nano_circuits Nano_synth
