test/test_equiv.ml: Alcotest Helpers List Nano_circuits Nano_netlist Nano_synth Printf QCheck2
