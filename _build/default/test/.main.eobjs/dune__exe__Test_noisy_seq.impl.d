test/test_noisy_seq.ml: Alcotest Array Helpers Nano_seq Printf
