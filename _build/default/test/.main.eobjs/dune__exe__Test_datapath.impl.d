test/test_datapath.ml: Alcotest Helpers List Nano_circuits Nano_netlist Printf QCheck2
