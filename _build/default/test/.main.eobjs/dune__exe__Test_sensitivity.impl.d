test/test_sensitivity.ml: Alcotest Array Helpers List Nano_circuits Nano_netlist Nano_sim QCheck2
