test/test_bitsim.ml: Alcotest Array Helpers Int64 Nano_netlist Nano_sim Nano_util
