test/test_strash.ml: Alcotest Helpers List Nano_netlist Nano_synth QCheck2
