test/test_alu.ml: Alcotest Helpers List Nano_circuits Nano_netlist Printf QCheck2 Stdlib
