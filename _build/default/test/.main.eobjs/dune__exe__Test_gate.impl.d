test/test_gate.ml: Alcotest Array Helpers List Nano_netlist Nano_util QCheck2
