test/test_fanin_limit.ml: Alcotest Helpers List Nano_netlist Nano_synth Printf QCheck2
