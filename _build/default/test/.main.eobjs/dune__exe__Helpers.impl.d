test/helpers.ml: Alcotest Array List Nano_netlist Nano_synth Nano_util Printf QCheck_alcotest String
