test/test_metrics.ml: Alcotest Float Helpers List Nano_bounds Printf QCheck2 String
