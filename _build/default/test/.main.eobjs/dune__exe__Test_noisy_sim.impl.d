test/test_noisy_sim.ml: Alcotest Helpers List Nano_bounds Nano_circuits Nano_faults Nano_netlist QCheck2
