test/test_headline.ml: Alcotest Helpers List Nano_bounds Nano_circuits Nano_synth Option
