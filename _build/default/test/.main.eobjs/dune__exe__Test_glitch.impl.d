test/test_glitch.ml: Alcotest Array Float Helpers List Nano_circuits Nano_netlist Nano_sim Nano_synth Printf
