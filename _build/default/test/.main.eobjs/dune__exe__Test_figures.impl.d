test/test_figures.ml: Alcotest Helpers List Nano_bounds
