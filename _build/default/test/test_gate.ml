module Gate = Nano_netlist.Gate

let test_arity () =
  Alcotest.(check bool) "input 0" true (Gate.arity_ok Gate.Input 0);
  Alcotest.(check bool) "input 1" false (Gate.arity_ok Gate.Input 1);
  Alcotest.(check bool) "not 1" true (Gate.arity_ok Gate.Not 1);
  Alcotest.(check bool) "not 2" false (Gate.arity_ok Gate.Not 2);
  Alcotest.(check bool) "and 2" true (Gate.arity_ok Gate.And 2);
  Alcotest.(check bool) "and 1" false (Gate.arity_ok Gate.And 1);
  Alcotest.(check bool) "maj 3" true (Gate.arity_ok Gate.Majority 3);
  Alcotest.(check bool) "maj 4" false (Gate.arity_ok Gate.Majority 4);
  Alcotest.(check bool) "maj 5" true (Gate.arity_ok Gate.Majority 5)

let test_eval () =
  let t = true and f = false in
  Alcotest.(check bool) "and tt" true (Gate.eval Gate.And [| t; t |]);
  Alcotest.(check bool) "and tf" false (Gate.eval Gate.And [| t; f |]);
  Alcotest.(check bool) "nand tf" true (Gate.eval Gate.Nand [| t; f |]);
  Alcotest.(check bool) "or ff" false (Gate.eval Gate.Or [| f; f |]);
  Alcotest.(check bool) "nor ff" true (Gate.eval Gate.Nor [| f; f |]);
  Alcotest.(check bool) "xor ttt" true (Gate.eval Gate.Xor [| t; t; t |]);
  Alcotest.(check bool) "xnor tt" true (Gate.eval Gate.Xnor [| t; t |]);
  Alcotest.(check bool) "not" false (Gate.eval Gate.Not [| t |]);
  Alcotest.(check bool) "buf" true (Gate.eval Gate.Buf [| t |]);
  Alcotest.(check bool) "maj ttf" true (Gate.eval Gate.Majority [| t; t; f |]);
  Alcotest.(check bool) "maj tff" false (Gate.eval Gate.Majority [| t; f; f |]);
  Alcotest.(check bool) "const" true (Gate.eval (Gate.Const true) [||]);
  Helpers.check_invalid "input eval" (fun () -> Gate.eval Gate.Input [||])

let test_eval_word_matches_eval () =
  (* Every logic kind, all input combinations for arities up to 3, every
     lane of the word evaluation must match the scalar evaluation. *)
  let kinds_arities =
    [
      (Gate.Buf, 1); (Gate.Not, 1);
      (Gate.And, 2); (Gate.And, 3);
      (Gate.Or, 2); (Gate.Or, 3);
      (Gate.Nand, 2); (Gate.Nor, 2);
      (Gate.Xor, 2); (Gate.Xor, 3);
      (Gate.Xnor, 2); (Gate.Xnor, 3);
      (Gate.Majority, 3); (Gate.Majority, 5);
    ]
  in
  List.iter
    (fun (kind, arity) ->
      for a = 0 to (1 lsl arity) - 1 do
        let bools = Array.init arity (fun i -> (a lsr i) land 1 = 1) in
        let words = Array.map (fun b -> if b then -1L else 0L) bools in
        let scalar = Gate.eval kind bools in
        let word = Gate.eval_word kind words in
        let expected = if scalar then -1L else 0L in
        if word <> expected then
          Alcotest.failf "%s arity %d assignment %d" (Gate.name kind) arity a
      done)
    kinds_arities

let test_names () =
  List.iter
    (fun kind ->
      match Gate.of_name (Gate.name kind) with
      | Some k -> Alcotest.(check bool) "roundtrip" true (k = kind)
      | None -> Alcotest.failf "no roundtrip for %s" (Gate.name kind))
    (Gate.Input :: Gate.Const true :: Gate.Const false :: Gate.all_logic_kinds);
  Alcotest.(check bool) "unknown" true (Gate.of_name "zzz" = None)

let test_is_source () =
  Alcotest.(check bool) "input" true (Gate.is_source Gate.Input);
  Alcotest.(check bool) "const" true (Gate.is_source (Gate.Const false));
  Alcotest.(check bool) "and" false (Gate.is_source Gate.And)

let prop_word_lanes_independent =
  QCheck2.Test.make ~name:"word lanes are independent evaluations" ~count:200
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 0 8))
    (fun (seed, kind_idx) ->
      let kind = List.nth Gate.all_logic_kinds kind_idx in
      let arity =
        match kind with
        | Gate.Buf | Gate.Not -> 1
        | Gate.Majority -> 3
        | _ -> 2
      in
      let rng = Nano_util.Prng.create ~seed in
      let words = Array.init arity (fun _ -> Nano_util.Prng.bits64 rng) in
      let result = Gate.eval_word kind words in
      let ok = ref true in
      for lane = 0 to 63 do
        let bools = Array.map (fun w -> Nano_util.Bits.get w lane) words in
        if Gate.eval kind bools <> Nano_util.Bits.get result lane then
          ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "arity_ok" `Quick test_arity;
    Alcotest.test_case "eval" `Quick test_eval;
    Alcotest.test_case "eval_word matches eval" `Quick test_eval_word_matches_eval;
    Alcotest.test_case "names" `Quick test_names;
    Alcotest.test_case "is_source" `Quick test_is_source;
    Helpers.qcheck prop_word_lanes_independent;
  ]
