module Glitch = Nano_sim.Glitch
module Netlist = Nano_netlist.Netlist
module B = Nano_netlist.Netlist.Builder

let test_single_gate_hazard_free () =
  let b = B.create () in
  let x = B.input b "x" in
  let y = B.input b "y" in
  let g = B.and2 b x y in
  B.output b "o" g;
  let n = B.finish b in
  let p = Glitch.unit_delay ~pairs:8192 n in
  (* One gate fed directly by inputs cannot glitch. *)
  Helpers.check_loose "factor 1" 1. p.Glitch.glitch_factor;
  Helpers.check_loose "transitions = settled"
    p.Glitch.node_settled_toggles.(g)
    p.Glitch.node_transitions.(g)

let test_static_hazard () =
  (* z = x & ~x: settled value constant 0, but when x rises the AND sees
     (new x, stale ~x) for one time unit and pulses. *)
  let b = B.create () in
  let x = B.input b "x" in
  let inv = B.not_ b x in
  let z = B.and2 b x inv in
  B.output b "o" z;
  let n = B.finish b in
  let p = Glitch.unit_delay ~pairs:65536 n in
  Helpers.check_float "never settles differently" 0.
    p.Glitch.node_settled_toggles.(z);
  (* x rises on 1/4 of random pairs; each rise gives a 0-1-0 pulse = 2
     transitions. *)
  Helpers.check_in_range "hazard pulses" ~lo:0.45 ~hi:0.55
    p.Glitch.node_transitions.(z)

let test_settled_matches_activity_model () =
  (* The settled toggles must agree with the measured toggle rate from
     Activity (same temporal-independence experiment). *)
  let n = Helpers.random_netlist ~seed:21 ~inputs:5 ~gates:20 () in
  let p = Glitch.unit_delay ~pairs:100000 n in
  let reference = Nano_sim.Activity.measured_toggle_rate ~pairs:100000 n in
  Array.iteri
    (fun id expected ->
      let got = p.Glitch.node_settled_toggles.(id) in
      if Float.abs (got -. expected) > 0.02 then
        Alcotest.failf "node %d: %.4f vs %.4f" id got expected)
    reference

let test_glitch_factor_at_least_one () =
  List.iter
    (fun entry ->
      let circuit = entry.Nano_circuits.Suite.build () in
      let p = Glitch.unit_delay ~pairs:1024 circuit in
      if p.Glitch.glitch_factor < 1. -. 1e-9 then
        Alcotest.failf "%s: factor %.3f < 1" entry.Nano_circuits.Suite.name
          p.Glitch.glitch_factor)
    (List.filter
       (fun e ->
         List.mem e.Nano_circuits.Suite.name
           [ "c17"; "rca8"; "mult4"; "parity16"; "csel16" ])
       Nano_circuits.Suite.all)

let test_multiplier_glitches_more_than_tree () =
  (* Array multipliers are the canonical glitchy circuit; balanced parity
     trees are nearly hazard-free. *)
  let mult = Nano_circuits.Multipliers.array_multiplier ~width:4 in
  let tree = Nano_circuits.Trees.parity_tree ~inputs:16 ~fanin:2 in
  let pm = Glitch.unit_delay ~pairs:4096 mult in
  let pt = Glitch.unit_delay ~pairs:4096 tree in
  Alcotest.(check bool)
    (Printf.sprintf "mult %.2f > tree %.2f" pm.Glitch.glitch_factor
       pt.Glitch.glitch_factor)
    true
    (pm.Glitch.glitch_factor > pt.Glitch.glitch_factor)

let test_balance_reduces_glitching () =
  (* A skewed XOR chain glitches badly: changes reach gate k at k
     staggered times and XOR never masks, so deep gates toggle many
     times per input change. The balanced tree aligns arrivals. (AND
     chains would not show this — masking suppresses their activity.) *)
  let b = B.create () in
  let xs = List.init 12 (fun i -> B.input b (Printf.sprintf "x%d" i)) in
  let root =
    match xs with
    | first :: rest -> List.fold_left (fun acc x -> B.xor2 b acc x) first rest
    | [] -> assert false
  in
  B.output b "y" root;
  let chain = B.finish b in
  let balanced = Nano_synth.Balance.run chain in
  let pc = Glitch.unit_delay ~pairs:8192 chain in
  let pb = Glitch.unit_delay ~pairs:8192 balanced in
  Alcotest.(check bool)
    (Printf.sprintf "chain %.3f >= balanced %.3f"
       pc.Glitch.average_gate_transitions pb.Glitch.average_gate_transitions)
    true
    (pc.Glitch.average_gate_transitions
    >= pb.Glitch.average_gate_transitions -. 1e-6)

let suite =
  [
    Alcotest.test_case "single gate hazard free" `Quick
      test_single_gate_hazard_free;
    Alcotest.test_case "static hazard" `Quick test_static_hazard;
    Alcotest.test_case "settled matches activity" `Quick
      test_settled_matches_activity_model;
    Alcotest.test_case "factor >= 1" `Quick test_glitch_factor_at_least_one;
    Alcotest.test_case "multiplier glitchier than tree" `Quick
      test_multiplier_glitches_more_than_tree;
    Alcotest.test_case "balance reduces glitching" `Quick
      test_balance_reduces_glitching;
  ]
