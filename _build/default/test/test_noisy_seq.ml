module Noisy_seq = Nano_seq.Noisy_seq
module Circuits = Nano_seq.Seq_circuits

let test_zero_noise () =
  let m = Circuits.counter ~bits:4 in
  let t = Noisy_seq.simulate ~epsilon:0. ~cycles:32 m in
  Array.iter (fun e -> Helpers.check_float "no output errors" 0. e)
    t.Noisy_seq.output_error_per_cycle;
  Helpers.check_float "no state corruption" 0. t.Noisy_seq.final_state_error;
  Alcotest.(check bool) "no halflife" true (Noisy_seq.state_halflife t = None)

let test_counter_accumulates_errors () =
  (* A counter never flushes a corrupted count: state error is
     monotone-ish and approaches 1. *)
  let m = Circuits.counter ~bits:8 in
  let t = Noisy_seq.simulate ~epsilon:0.01 ~cycles:128 ~streams:512 m in
  let early = t.Noisy_seq.state_error_per_cycle.(4) in
  let late = t.Noisy_seq.state_error_per_cycle.(127) in
  Alcotest.(check bool)
    (Printf.sprintf "accumulates: %.3f -> %.3f" early late)
    true (late > early);
  Alcotest.(check bool) "mostly corrupted at the end" true (late > 0.8);
  (match Noisy_seq.state_halflife t with
  | Some h -> Alcotest.(check bool) "halflife sensible" true (h > 0 && h < 128)
  | None -> Alcotest.fail "expected corruption to cross 1/2")

let test_shift_register_flushes () =
  (* A shift register flushes any state corruption within [bits] cycles:
     its long-run state error stays bounded (it cannot accumulate), and
     is far below an accumulator's. *)
  let bits = 8 in
  let shift = Circuits.shift_register ~bits in
  let counter = Circuits.counter ~bits in
  let epsilon = 0.01 in
  let ts = Noisy_seq.simulate ~epsilon ~cycles:128 ~streams:512 shift in
  let tc = Noisy_seq.simulate ~epsilon ~cycles:128 ~streams:512 counter in
  (* the shift register's core is pure wiring: zero noisy gates, so no
     errors at all — it flushes trivially. The counter saturates. *)
  Alcotest.(check bool)
    (Printf.sprintf "shift %.3f << counter %.3f"
       ts.Noisy_seq.final_state_error tc.Noisy_seq.final_state_error)
    true
    (ts.Noisy_seq.final_state_error < tc.Noisy_seq.final_state_error /. 2.)

let test_output_error_tracks_state () =
  (* Once the accumulator's state diverges, its observable outputs (the
     registered value) stay wrong: late output error ~ late state
     error. *)
  let m = Circuits.accumulator ~width:8 in
  let t = Noisy_seq.simulate ~epsilon:0.005 ~cycles:96 ~streams:512 m in
  let late_out = t.Noisy_seq.output_error_per_cycle.(95) in
  let late_state = t.Noisy_seq.state_error_per_cycle.(94) in
  Helpers.check_in_range "outputs track state"
    ~lo:(late_state -. 0.12) ~hi:(late_state +. 0.12) late_out

let test_more_noise_faster_corruption () =
  let m = Circuits.accumulator ~width:8 in
  let h epsilon =
    match
      Noisy_seq.state_halflife
        (Noisy_seq.simulate ~epsilon ~cycles:256 ~streams:256 m)
    with
    | Some h -> h
    | None -> 256
  in
  Alcotest.(check bool) "higher eps corrupts faster" true (h 0.02 <= h 0.002)

let test_streams_rounding () =
  let m = Circuits.counter ~bits:2 in
  let t = Noisy_seq.simulate ~epsilon:0.01 ~cycles:4 ~streams:100 m in
  Alcotest.(check int) "rounded to word lanes" 128 t.Noisy_seq.streams

let suite =
  [
    Alcotest.test_case "zero noise" `Quick test_zero_noise;
    Alcotest.test_case "counter accumulates" `Quick
      test_counter_accumulates_errors;
    Alcotest.test_case "shift register flushes" `Quick
      test_shift_register_flushes;
    Alcotest.test_case "output tracks state" `Quick
      test_output_error_tracks_state;
    Alcotest.test_case "noise vs corruption speed" `Quick
      test_more_noise_faster_corruption;
    Alcotest.test_case "streams rounding" `Quick test_streams_rounding;
  ]
