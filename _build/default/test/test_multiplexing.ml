module Mux = Nano_redundancy.Multiplexing
module Netlist = Nano_netlist.Netlist

let test_unit_structure () =
  let n = Mux.nand_unit ~bundle:8 ~restorative_stages:2 ~seed:1 in
  Alcotest.(check int) "inputs" 16 (List.length (Netlist.inputs n));
  Alcotest.(check int) "outputs" 8 (List.length (Netlist.outputs n));
  Alcotest.(check int) "gates" (Mux.size ~bundle:8 ~restorative_stages:2)
    (Netlist.size n);
  Alcotest.(check int) "size formula" 40
    (Mux.size ~bundle:8 ~restorative_stages:2)

let test_unit_is_nand_bundle () =
  (* Without noise and with clean bundles, every output wire must equal
     NAND of the logical values. *)
  let n = Mux.nand_unit ~bundle:6 ~restorative_stages:1 ~seed:3 in
  List.iter
    (fun (x, y) ->
      let bindings =
        List.concat
          [
            List.init 6 (fun i -> (Printf.sprintf "x%d" i, x));
            List.init 6 (fun i -> (Printf.sprintf "y%d" i, y));
          ]
      in
      let out = Netlist.eval n bindings in
      List.iter
        (fun (_, v) ->
          Alcotest.(check bool)
            (Printf.sprintf "nand %b %b" x y)
            (not (x && y))
            v)
        out)
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_analytic_nand_level () =
  Helpers.check_float "clean high inputs" 0.
    (Mux.analytic_nand_level ~epsilon:0. 1. 1.);
  Helpers.check_float "clean low inputs" 1.
    (Mux.analytic_nand_level ~epsilon:0. 0. 0.);
  (* eps = 1/2 destroys everything. *)
  Helpers.check_float "coin flip" 0.5 (Mux.analytic_nand_level ~epsilon:0.5 1. 1.)

let test_fixed_point () =
  (* Perfect gates restore perfectly. *)
  Helpers.check_loose "eps=0" 1. (Mux.stimulated_fixed_point ~epsilon:0.);
  let fp = Mux.stimulated_fixed_point ~epsilon:0.01 in
  Helpers.check_in_range "eps=1%" ~lo:0.97 ~hi:0.9999 fp;
  (* Above von Neumann's NAND threshold (~0.0887) restoration
     collapses toward 1/2. *)
  let broken = Mux.stimulated_fixed_point ~epsilon:0.2 in
  Helpers.check_in_range "beyond threshold" ~lo:0.4 ~hi:0.75 broken;
  Alcotest.(check bool) "degrades with eps" true (broken < fp)

let test_restoration_sharpens () =
  (* Starting from a degraded stimulated level, one restorative stage
     must move the level closer to the fixed point. *)
  let epsilon = 0.005 in
  let degraded = 0.85 in
  let after = Mux.analytic_stage ~epsilon ~restorative_stages:1 degraded 0.02 in
  (* NAND of high x and low y is stimulated; with restoration it should
     exceed the plain executive-stage level. *)
  let bare = Mux.analytic_stage ~epsilon ~restorative_stages:0 degraded 0.02 in
  Alcotest.(check bool) "restoration helps" true (after > bare -. 1e-9);
  Helpers.check_in_range "close to fp" ~lo:0.97 ~hi:1. after

let test_measured_levels () =
  let measured =
    Mux.measured_output_level ~trials:32 ~epsilon:0.01 ~bundle:17
      ~restorative_stages:2 ~x_level:0.95 ~y_level:0.05 ()
  in
  (* NAND(high, low) is stimulated: expect a high output level. *)
  Helpers.check_in_range "stimulated" ~lo:0.9 ~hi:1.
    measured.Nano_util.Stats.mean;
  let quiet =
    Mux.measured_output_level ~trials:32 ~epsilon:0.01 ~bundle:17
      ~restorative_stages:2 ~x_level:0.95 ~y_level:0.95 ()
  in
  Helpers.check_in_range "quiet" ~lo:0. ~hi:0.1 quiet.Nano_util.Stats.mean

let test_bigger_bundles_tighter () =
  let sd bundle =
    (Mux.measured_output_level ~trials:48 ~epsilon:0.02 ~bundle
       ~restorative_stages:2 ~x_level:0.95 ~y_level:0.05 ())
      .Nano_util.Stats.stddev
  in
  Alcotest.(check bool) "N=65 tighter than N=5" true (sd 65 < sd 5)

let test_domain () =
  Helpers.check_invalid "bundle 1" (fun () ->
      ignore (Mux.nand_unit ~bundle:1 ~restorative_stages:0 ~seed:0));
  Helpers.check_invalid "negative stages" (fun () ->
      ignore (Mux.nand_unit ~bundle:4 ~restorative_stages:(-1) ~seed:0))

let prop_analytic_level_in_range =
  QCheck2.Test.make ~name:"analytic levels stay in [0,1]" ~count:200
    QCheck2.Gen.(
      quad (float_range 0. 0.5) (float_range 0. 1.) (float_range 0. 1.)
        (int_range 0 4))
    (fun (epsilon, x, y, stages) ->
      let l = Mux.analytic_stage ~epsilon ~restorative_stages:stages x y in
      l >= 0. && l <= 1.)

let suite =
  [
    Alcotest.test_case "unit structure" `Quick test_unit_structure;
    Alcotest.test_case "unit computes nand" `Quick test_unit_is_nand_bundle;
    Alcotest.test_case "analytic nand level" `Quick test_analytic_nand_level;
    Alcotest.test_case "fixed point" `Quick test_fixed_point;
    Alcotest.test_case "restoration sharpens" `Quick test_restoration_sharpens;
    Alcotest.test_case "measured levels" `Quick test_measured_levels;
    Alcotest.test_case "bigger bundles tighter" `Quick
      test_bigger_bundles_tighter;
    Alcotest.test_case "domain" `Quick test_domain;
    Helpers.qcheck prop_analytic_level_in_range;
  ]
