module Netlist = Nano_netlist.Netlist
module B = Nano_netlist.Netlist.Builder
module Gate = Nano_netlist.Gate

(* A reference half-adder used by several tests. *)
let half_adder () =
  let b = B.create ~name:"ha" () in
  let x = B.input b "x" in
  let y = B.input b "y" in
  B.output b "sum" (B.xor2 b x y);
  B.output b "carry" (B.and2 b x y);
  B.finish b

let test_builder_basics () =
  let n = half_adder () in
  Alcotest.(check string) "name" "ha" (Netlist.name n);
  Alcotest.(check int) "nodes" 4 (Netlist.node_count n);
  Alcotest.(check int) "size" 2 (Netlist.size n);
  Alcotest.(check int) "depth" 1 (Netlist.depth n);
  Alcotest.(check (list string)) "inputs" [ "x"; "y" ] (Netlist.input_names n);
  Alcotest.(check (list string)) "outputs" [ "sum"; "carry" ]
    (List.map fst (Netlist.outputs n))

let test_eval () =
  let n = half_adder () in
  let out = Netlist.eval n [ ("x", true); ("y", true) ] in
  Alcotest.(check bool) "sum" false (List.assoc "sum" out);
  Alcotest.(check bool) "carry" true (List.assoc "carry" out);
  let out = Netlist.eval n [ ("y", false); ("x", true) ] in
  Alcotest.(check bool) "sum 10" true (List.assoc "sum" out);
  Alcotest.(check bool) "carry 10" false (List.assoc "carry" out)

let test_eval_errors () =
  let n = half_adder () in
  Helpers.check_invalid "missing input" (fun () ->
      Netlist.eval n [ ("x", true) ])

let test_builder_validation () =
  let b = B.create () in
  let x = B.input b "x" in
  Helpers.check_invalid "bad arity" (fun () -> B.add b Gate.And [ x ]);
  Helpers.check_invalid "input via add" (fun () -> B.add b Gate.Input []);
  Helpers.check_invalid "fanin out of range" (fun () ->
      B.add b Gate.Not [ 99 ]);
  B.output b "y" x;
  Helpers.check_invalid "duplicate output" (fun () -> B.output b "y" x)

let test_finish_requires_output () =
  let b = B.create () in
  let _ = B.input b "x" in
  Helpers.check_invalid "no outputs" (fun () -> ignore (B.finish b))

let test_const_hash_consing () =
  let b = B.create () in
  let c1 = B.const b true in
  let c2 = B.const b true in
  let c3 = B.const b false in
  Alcotest.(check int) "same node" c1 c2;
  Alcotest.(check bool) "different polarity" true (c1 <> c3);
  B.output b "o" c1;
  ignore (B.finish b)

let test_reduce () =
  let b = B.create () in
  let xs = List.init 7 (fun i -> B.input b (Printf.sprintf "x%d" i)) in
  let root = B.reduce b Gate.Xor xs in
  B.output b "p" root;
  let n = B.finish b in
  (* A 7-leaf binary tree has 6 gates and depth 3. *)
  Alcotest.(check int) "gates" 6 (Netlist.size n);
  Alcotest.(check int) "depth" 3 (Netlist.depth n);
  (* and computes parity *)
  let check_parity assignment =
    let bindings =
      List.init 7 (fun i ->
          (Printf.sprintf "x%d" i, (assignment lsr i) land 1 = 1))
    in
    let expected =
      Nano_util.Bits.popcount64 (Int64.of_int assignment) land 1 = 1
    in
    Alcotest.(check bool) "parity" expected
      (List.assoc "p" (Netlist.eval n bindings))
  in
  List.iter check_parity [ 0; 1; 3; 127; 85 ]

let test_levels_fanouts () =
  let b = B.create () in
  let x = B.input b "x" in
  let n1 = B.not_ b x in
  let n2 = B.and2 b x n1 in
  let n3 = B.or2 b n2 n1 in
  B.output b "o" n3;
  let n = B.finish b in
  let lv = Netlist.levels n in
  Alcotest.(check int) "input level" 0 lv.(x);
  Alcotest.(check int) "not level" 1 lv.(n1);
  Alcotest.(check int) "and level" 2 lv.(n2);
  Alcotest.(check int) "or level" 3 lv.(n3);
  let fo = Netlist.fanout_counts n in
  Alcotest.(check int) "x drives 2" 2 fo.(x);
  Alcotest.(check int) "n1 drives 2" 2 fo.(n1);
  Alcotest.(check int) "n3 drives 0" 0 fo.(n3)

let test_average_max_fanin () =
  let b = B.create () in
  let x = B.input b "x" in
  let y = B.input b "y" in
  let z = B.input b "z" in
  let a = B.add b Gate.And [ x; y; z ] in
  let o = B.or2 b a x in
  B.output b "o" o;
  let n = B.finish b in
  Helpers.check_float "avg fanin" 2.5 (Netlist.average_fanin n);
  Alcotest.(check int) "max fanin" 3 (Netlist.max_fanin n)

let test_transitive_fanin () =
  let b = B.create () in
  let x = B.input b "x" in
  let y = B.input b "y" in
  let dead = B.not_ b y in
  let live = B.not_ b x in
  B.output b "o" live;
  let n = B.finish b in
  let in_cone = Netlist.transitive_fanin n [ live ] in
  Alcotest.(check bool) "x in cone" true (in_cone x);
  Alcotest.(check bool) "live in cone" true (in_cone live);
  Alcotest.(check bool) "dead not in cone" false (in_cone dead);
  Alcotest.(check bool) "y not in cone" false (in_cone y)

let test_validate () =
  let n = half_adder () in
  (match Netlist.validate n with
  | Ok () -> ()
  | Error e -> Alcotest.failf "expected valid: %s" e);
  ()

let test_buf_not_counted () =
  let b = B.create () in
  let x = B.input b "x" in
  let buf = B.add b Gate.Buf [ x ] in
  let inv = B.not_ b buf in
  B.output b "o" inv;
  let n = B.finish b in
  Alcotest.(check int) "size excludes buf" 1 (Netlist.size n)

let test_to_dot () =
  let dot = Netlist.to_dot (half_adder ()) in
  Alcotest.(check bool) "digraph present" true
    (String.length dot > 7 && String.sub dot 0 7 = "digraph")

let prop_random_netlists_valid =
  QCheck2.Test.make ~name:"random netlists validate" ~count:100
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let n = Helpers.random_netlist ~seed ~inputs:4 ~gates:20 () in
      Netlist.validate n = Ok ())

let prop_eval_nodes_matches_eval =
  QCheck2.Test.make ~name:"eval_nodes agrees with eval" ~count:100
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 0 15))
    (fun (seed, assignment) ->
      let n = Helpers.random_netlist ~seed ~inputs:4 ~gates:15 () in
      let bits = Array.init 4 (fun i -> (assignment lsr i) land 1 = 1) in
      let values = Netlist.eval_nodes n bits in
      let bindings =
        List.mapi
          (fun i name -> (name, bits.(i)))
          (Netlist.input_names n)
      in
      let by_name = Netlist.eval n bindings in
      List.for_all
        (fun (name, node) -> List.assoc name by_name = values.(node))
        (Netlist.outputs n))

let suite =
  [
    Alcotest.test_case "builder basics" `Quick test_builder_basics;
    Alcotest.test_case "eval" `Quick test_eval;
    Alcotest.test_case "eval errors" `Quick test_eval_errors;
    Alcotest.test_case "builder validation" `Quick test_builder_validation;
    Alcotest.test_case "finish requires output" `Quick test_finish_requires_output;
    Alcotest.test_case "const hash consing" `Quick test_const_hash_consing;
    Alcotest.test_case "reduce" `Quick test_reduce;
    Alcotest.test_case "levels/fanouts" `Quick test_levels_fanouts;
    Alcotest.test_case "fanin stats" `Quick test_average_max_fanin;
    Alcotest.test_case "transitive fanin" `Quick test_transitive_fanin;
    Alcotest.test_case "validate" `Quick test_validate;
    Alcotest.test_case "buf not counted" `Quick test_buf_not_counted;
    Alcotest.test_case "to_dot" `Quick test_to_dot;
    Helpers.qcheck prop_random_netlists_valid;
    Helpers.qcheck prop_eval_nodes_matches_eval;
  ]
