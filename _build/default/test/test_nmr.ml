module Nmr = Nano_redundancy.Nmr
module Netlist = Nano_netlist.Netlist

let base () = Nano_circuits.Adders.ripple_carry ~width:2

let test_make_structure () =
  let b = base () in
  let n3 = Nmr.make ~n:3 b in
  (* 3 copies of the logic + one voter per output. *)
  Alcotest.(check int) "size"
    ((3 * Netlist.size b) + List.length (Netlist.outputs b))
    (Netlist.size n3);
  (* interface preserved *)
  Alcotest.(check (list string)) "inputs" (Netlist.input_names b)
    (Netlist.input_names n3);
  Alcotest.(check (list string)) "outputs"
    (List.map fst (Netlist.outputs b))
    (List.map fst (Netlist.outputs n3))

let test_function_preserved () =
  let b = base () in
  Helpers.assert_equivalent "nmr3" b (Nmr.make ~n:3 b);
  Helpers.assert_equivalent "nmr5" b (Nmr.make ~n:5 b)

let test_domain () =
  Helpers.check_invalid "even n" (fun () -> ignore (Nmr.make ~n:4 (base ())));
  Helpers.check_invalid "n=1" (fun () -> ignore (Nmr.make ~n:1 (base ())))

let test_size_overhead () =
  let overhead = Nmr.size_overhead ~n:3 (base ()) in
  Alcotest.(check bool) "slightly above 3x" true
    (overhead > 3. && overhead < 4.)

let test_binomial_tail () =
  Helpers.check_float "k=0" 1. (Nmr.binomial_tail ~n:5 ~k:0 ~p:0.3);
  Helpers.check_float "k>n" 0. (Nmr.binomial_tail ~n:5 ~k:6 ~p:0.3);
  Helpers.check_loose "exactly n" (0.3 ** 5.) (Nmr.binomial_tail ~n:5 ~k:5 ~p:0.3);
  (* P(X>=2 of 3, p=1/2) = 4/8 = 1/2 *)
  Helpers.check_loose "majority of 3 at 1/2" 0.5
    (Nmr.binomial_tail ~n:3 ~k:2 ~p:0.5);
  Helpers.check_float "p=0" 0. (Nmr.binomial_tail ~n:9 ~k:1 ~p:0.);
  Helpers.check_float "p=1" 1. (Nmr.binomial_tail ~n:9 ~k:9 ~p:1.)

let test_analytic_voted_error () =
  (* Perfect voter, module error 0.1, n=3:
     B = 3 * 0.01 * 0.9 + 0.001 = 0.028. *)
  Helpers.check_loose "tmr textbook" 0.028
    (Nmr.analytic_voted_error ~n:3 ~module_error:0.1 ~voter_epsilon:0.);
  (* Noisy voter floors the reliability at epsilon. *)
  let with_voter =
    Nmr.analytic_voted_error ~n:3 ~module_error:0.1 ~voter_epsilon:0.01
  in
  Alcotest.(check bool) "voter adds error" true (with_voter > 0.028);
  (* voting cannot help when modules are coin flips *)
  Helpers.check_loose "p=1/2 fixed" 0.5
    (Nmr.analytic_voted_error ~n:9 ~module_error:0.5 ~voter_epsilon:0.)

let test_monte_carlo_agreement () =
  (* The analytic voted error must match fault injection on a replicated
     inverter (single output, independent replica errors). *)
  let b = Netlist.Builder.create () in
  let x = Netlist.Builder.input b "x" in
  Netlist.Builder.output b "o" (Netlist.Builder.not_ b x);
  let inv = Netlist.Builder.finish b in
  let epsilon = 0.05 in
  let voted = Nmr.make ~n:3 inv in
  let sim = Nano_faults.Noisy_sim.simulate ~vectors:400000 ~epsilon voted in
  let analytic =
    Nmr.analytic_voted_error ~n:3 ~module_error:epsilon ~voter_epsilon:epsilon
  in
  Helpers.check_in_range "delta matches"
    ~lo:(analytic -. 0.005) ~hi:(analytic +. 0.005)
    sim.Nano_faults.Noisy_sim.any_output_error

let prop_more_modules_help =
  QCheck2.Test.make ~name:"higher N reduces voted error (p < 1/2)" ~count:100
    QCheck2.Gen.(pair (float_range 0.01 0.4) (int_range 1 4))
    (fun (p, k) ->
      let n = (2 * k) + 1 in
      let e_small = Nmr.analytic_voted_error ~n ~module_error:p ~voter_epsilon:0. in
      let e_big =
        Nmr.analytic_voted_error ~n:(n + 2) ~module_error:p ~voter_epsilon:0.
      in
      e_big <= e_small +. 1e-12)

let suite =
  [
    Alcotest.test_case "make structure" `Quick test_make_structure;
    Alcotest.test_case "function preserved" `Quick test_function_preserved;
    Alcotest.test_case "domain" `Quick test_domain;
    Alcotest.test_case "size overhead" `Quick test_size_overhead;
    Alcotest.test_case "binomial tail" `Quick test_binomial_tail;
    Alcotest.test_case "analytic voted error" `Quick test_analytic_voted_error;
    Alcotest.test_case "monte carlo agreement" `Quick
      test_monte_carlo_agreement;
    Helpers.qcheck prop_more_modules_help;
  ]
