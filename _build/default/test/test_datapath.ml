module Datapath = Nano_circuits.Datapath
module Netlist = Nano_netlist.Netlist

let bind prefix width v =
  List.init width (fun i -> (Printf.sprintf "%s%d" prefix i, (v lsr i) land 1 = 1))

let value_of prefix width out =
  List.fold_left
    (fun acc i ->
      if List.assoc (Printf.sprintf "%s%d" prefix i) out then acc lor (1 lsl i)
      else acc)
    0
    (List.init width (fun i -> i))

(* ------------------------------------------------------------------ *)

let test_barrel_shifter_exhaustive () =
  let width = 8 in
  let n = Datapath.barrel_shifter ~width in
  for d = 0 to 255 do
    for s = 0 to 7 do
      let out = Netlist.eval n (bind "d" width d @ bind "sh" 3 s) in
      let expected = (d lsl s) land 0xFF in
      let got = value_of "y" width out in
      if got <> expected then
        Alcotest.failf "%d << %d: expected %d got %d" d s expected got
    done
  done

let test_barrel_shifter_validation () =
  Helpers.check_invalid "non power of two" (fun () ->
      ignore (Datapath.barrel_shifter ~width:6))

let test_priority_encoder_exhaustive () =
  let width = 8 in
  let n = Datapath.priority_encoder ~width in
  for r = 0 to 255 do
    let out = Netlist.eval n (bind "r" width r) in
    let valid = List.assoc "valid" out in
    Alcotest.(check bool) "valid iff nonzero" (r <> 0) valid;
    if r <> 0 then begin
      let expected =
        let rec highest i = if (r lsr i) land 1 = 1 then i else highest (i - 1) in
        highest (width - 1)
      in
      Alcotest.(check int)
        (Printf.sprintf "encode %d" r)
        expected
        (value_of "idx" 3 out)
    end
  done

let signed width v = if (v lsr (width - 1)) land 1 = 1 then v - (1 lsl width) else v

let booth_check ~width netlist x y =
  let out = Netlist.eval netlist (bind "a" width x @ bind "b" width y) in
  let got = value_of "p" (2 * width) out in
  let product = signed width x * signed width y in
  let expected = product land ((1 lsl (2 * width)) - 1) in
  if got <> expected then
    Alcotest.failf "booth %d*%d (signed %d*%d): expected %d got %d" x y
      (signed width x) (signed width y) expected got

let test_booth_exhaustive_4bit () =
  let width = 4 in
  let n = Datapath.booth_multiplier ~width in
  for x = 0 to 15 do
    for y = 0 to 15 do
      booth_check ~width n x y
    done
  done

let prop_booth_random_8bit =
  QCheck2.Test.make ~name:"booth8 multiplies random signed operands"
    ~count:80
    QCheck2.Gen.(pair (int_range 0 255) (int_range 0 255))
    (let n = Datapath.booth_multiplier ~width:8 in
     fun (x, y) ->
       match booth_check ~width:8 n x y with
       | () -> true
       | exception _ -> false)

let test_booth_matches_array_on_nonnegative () =
  (* For operands with clear sign bits the signed and unsigned products
     agree, so Booth must match the array multiplier. *)
  let width = 4 in
  let booth = Datapath.booth_multiplier ~width in
  let array_m = Nano_circuits.Multipliers.array_multiplier ~width in
  for x = 0 to 7 do
    for y = 0 to 7 do
      let bindings = bind "a" width x @ bind "b" width y in
      let pb = value_of "p" (2 * width) (Netlist.eval booth bindings) in
      let pa = value_of "p" (2 * width) (Netlist.eval array_m bindings) in
      Alcotest.(check int) (Printf.sprintf "%d*%d" x y) pa pb
    done
  done

let test_carry_skip_adder () =
  let module Adders = Nano_circuits.Adders in
  (* exhaustive at width 5 with block 2 (uneven tail block) *)
  let width = 5 in
  let n = Adders.carry_skip ~width ~block:2 in
  for x = 0 to 31 do
    for y = 0 to 31 do
      List.iter
        (fun cin ->
          let bindings =
            bind "a" width x @ bind "b" width y @ [ ("cin", cin) ]
          in
          let out = Netlist.eval n bindings in
          let got =
            value_of "s" width out
            lor if List.assoc "cout" out then 1 lsl width else 0
          in
          let expected = x + y + if cin then 1 else 0 in
          if got <> expected then
            Alcotest.failf "%d+%d+%b: expected %d got %d" x y cin expected got)
        [ false; true ]
    done
  done;
  (* equivalence against the ripple adder at width 8 *)
  Helpers.assert_equivalent "cskip8 = rca8"
    (Adders.ripple_carry ~width:8)
    (Adders.carry_skip ~width:8 ~block:3)

let suite =
  [
    Alcotest.test_case "barrel shifter exhaustive" `Quick
      test_barrel_shifter_exhaustive;
    Alcotest.test_case "barrel shifter validation" `Quick
      test_barrel_shifter_validation;
    Alcotest.test_case "priority encoder exhaustive" `Quick
      test_priority_encoder_exhaustive;
    Alcotest.test_case "booth exhaustive 4-bit" `Quick
      test_booth_exhaustive_4bit;
    Alcotest.test_case "booth matches array (non-negative)" `Quick
      test_booth_matches_array_on_nonnegative;
    Alcotest.test_case "carry-skip adder" `Quick test_carry_skip_adder;
    Helpers.qcheck prop_booth_random_8bit;
  ]
