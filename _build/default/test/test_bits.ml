module Bits = Nano_util.Bits

let test_popcount () =
  Alcotest.(check int) "zero" 0 (Bits.popcount64 0L);
  Alcotest.(check int) "all" 64 (Bits.popcount64 (-1L));
  Alcotest.(check int) "0xFF" 8 (Bits.popcount64 0xFFL);
  Alcotest.(check int) "alternating" 32 (Bits.popcount64 0x5555555555555555L)

let test_parity () =
  Alcotest.(check bool) "parity 0" false (Bits.parity64 0L);
  Alcotest.(check bool) "parity 1" true (Bits.parity64 1L);
  Alcotest.(check bool) "parity 3" false (Bits.parity64 3L)

let test_get_set () =
  let w = Bits.set 0L 7 true in
  Alcotest.(check bool) "set then get" true (Bits.get w 7);
  Alcotest.(check bool) "other bit clear" false (Bits.get w 6);
  let w = Bits.set w 7 false in
  Alcotest.(check bool) "cleared" false (Bits.get w 7);
  Alcotest.(check bool) "bit 63" true (Bits.get (Bits.set 0L 63 true) 63)

let test_ones_below () =
  Alcotest.(check int64) "ones_below 0" 0L (Bits.ones_below 0);
  Alcotest.(check int64) "ones_below 4" 0xFL (Bits.ones_below 4);
  Alcotest.(check int64) "ones_below 64" (-1L) (Bits.ones_below 64)

let test_vec_basic () =
  let v = Bits.Vec.create 100 in
  Alcotest.(check int) "length" 100 (Bits.Vec.length v);
  Alcotest.(check int) "popcount empty" 0 (Bits.Vec.popcount v);
  Bits.Vec.set v 0 true;
  Bits.Vec.set v 64 true;
  Bits.Vec.set v 99 true;
  Alcotest.(check int) "popcount 3" 3 (Bits.Vec.popcount v);
  Alcotest.(check bool) "get 64" true (Bits.Vec.get v 64);
  Alcotest.(check bool) "get 63" false (Bits.Vec.get v 63)

let test_vec_fill_normalized () =
  let v = Bits.Vec.create 70 in
  Bits.Vec.fill v true;
  (* Bits past the length must not be counted. *)
  Alcotest.(check int) "popcount after fill" 70 (Bits.Vec.popcount v);
  Bits.Vec.fill v false;
  Alcotest.(check int) "popcount after clear" 0 (Bits.Vec.popcount v)

let test_vec_map2 () =
  let a = Bits.Vec.of_string "1100" in
  let b = Bits.Vec.of_string "1010" in
  let dst = Bits.Vec.create 4 in
  Bits.Vec.map2_into ~dst Int64.logand a b;
  Alcotest.(check string) "and" "1000" (Bits.Vec.to_string dst);
  Bits.Vec.map2_into ~dst Int64.logxor a b;
  Alcotest.(check string) "xor" "0110" (Bits.Vec.to_string dst)

let test_vec_string_roundtrip () =
  let s = "10110011101" in
  Alcotest.(check string) "roundtrip" s
    (Bits.Vec.to_string (Bits.Vec.of_string s))

let test_vec_equal_copy () =
  let v = Bits.Vec.of_string "0101" in
  let w = Bits.Vec.copy v in
  Alcotest.(check bool) "copy equal" true (Bits.Vec.equal v w);
  Bits.Vec.set w 0 true;
  Alcotest.(check bool) "diverged" false (Bits.Vec.equal v w)

let prop_popcount_split =
  QCheck2.Test.make ~name:"popcount splits over halves" QCheck2.Gen.int64
    (fun w ->
      let lo = Int64.logand w 0xFFFFFFFFL in
      let hi = Int64.shift_right_logical w 32 in
      Bits.popcount64 w = Bits.popcount64 lo + Bits.popcount64 hi)

let prop_fold_bits_consistent =
  QCheck2.Test.make ~name:"Vec.fold_bits counts match popcount"
    QCheck2.Gen.(list_size (int_range 1 200) bool)
    (fun bits ->
      let v = Bits.Vec.create (List.length bits) in
      List.iteri (fun i b -> Bits.Vec.set v i b) bits;
      let counted = Bits.Vec.fold_bits (fun _ b acc -> if b then acc + 1 else acc) v 0 in
      counted = Bits.Vec.popcount v)

let suite =
  [
    Alcotest.test_case "popcount64" `Quick test_popcount;
    Alcotest.test_case "parity64" `Quick test_parity;
    Alcotest.test_case "get/set" `Quick test_get_set;
    Alcotest.test_case "ones_below" `Quick test_ones_below;
    Alcotest.test_case "vec basic" `Quick test_vec_basic;
    Alcotest.test_case "vec fill normalized" `Quick test_vec_fill_normalized;
    Alcotest.test_case "vec map2" `Quick test_vec_map2;
    Alcotest.test_case "vec string roundtrip" `Quick test_vec_string_roundtrip;
    Alcotest.test_case "vec equal/copy" `Quick test_vec_equal_copy;
    Helpers.qcheck prop_popcount_split;
    Helpers.qcheck prop_fold_bits_consistent;
  ]
