module Balance = Nano_synth.Balance
module Netlist = Nano_netlist.Netlist
module B = Nano_netlist.Netlist.Builder
module Gate = Nano_netlist.Gate

(* A deliberately skewed chain: (((x0 op x1) op x2) op x3) ... *)
let chain kind n_inputs =
  let b = B.create () in
  let xs = List.init n_inputs (fun i -> B.input b (Printf.sprintf "x%d" i)) in
  let root =
    match xs with
    | first :: rest ->
      List.fold_left (fun acc x -> B.add b kind [ acc; x ]) first rest
    | [] -> assert false
  in
  B.output b "y" root;
  B.finish b

let test_chain_becomes_logarithmic () =
  List.iter
    (fun kind ->
      let skewed = chain kind 16 in
      Alcotest.(check int) "chain depth" 15 (Netlist.depth skewed);
      let balanced = Balance.run skewed in
      Alcotest.(check int)
        (Gate.name kind ^ " balanced depth")
        4
        (Netlist.depth balanced);
      Alcotest.(check int)
        (Gate.name kind ^ " same gate count")
        15
        (Netlist.size balanced);
      Helpers.assert_equivalent (Gate.name kind) skewed balanced)
    [ Gate.And; Gate.Or; Gate.Xor ]

let test_respects_fanout () =
  (* An intermediate result with external fanout must not be inlined. *)
  let b = B.create () in
  let x = B.input b "x" in
  let y = B.input b "y" in
  let z = B.input b "z" in
  let inner = B.and2 b x y in
  let outer = B.and2 b inner z in
  B.output b "inner" inner;
  B.output b "outer" outer;
  let n = B.finish b in
  let balanced = Balance.run n in
  Helpers.assert_equivalent "fanout preserved" n balanced;
  (* inner must still be computed once and shared *)
  Alcotest.(check int) "no duplication" 2 (Netlist.size balanced)

let test_arrival_time_aware () =
  (* Operand c arrives late (behind a chain); the balancer must pair the
     early operands first so the late one lands near the root:
     depth((a&b)&c_late) = late+1, not late+2. *)
  let b = B.create () in
  let a = B.input b "a" in
  let bb = B.input b "b" in
  let c0 = B.input b "c" in
  (* delay c by four inverters *)
  let rec delay node k = if k = 0 then node else delay (B.not_ b node) (k - 1) in
  let c_late = delay c0 4 in
  let t1 = B.and2 b a bb in
  let t2 = B.and2 b t1 c_late in
  B.output b "y" t2;
  let n = B.finish b in
  let balanced = Balance.run n in
  Helpers.assert_equivalent "same function" n balanced;
  Alcotest.(check int) "late operand at the root" 5 (Netlist.depth balanced)

let test_mixed_kinds_not_flattened () =
  (* and(or(x,y), z): different kinds must not merge. *)
  let b = B.create () in
  let x = B.input b "x" in
  let y = B.input b "y" in
  let z = B.input b "z" in
  B.output b "f" (B.and2 b (B.or2 b x y) z);
  let n = B.finish b in
  let balanced = Balance.run n in
  Helpers.assert_equivalent "mixed kinds" n balanced;
  Alcotest.(check int) "two gates" 2 (Netlist.size balanced)

let test_suite_depth_never_increases () =
  List.iter
    (fun entry ->
      let original = entry.Nano_circuits.Suite.build () in
      let balanced = Balance.run original in
      if Netlist.depth balanced > Netlist.depth original then
        Alcotest.failf "%s: depth %d -> %d" entry.Nano_circuits.Suite.name
          (Netlist.depth original) (Netlist.depth balanced))
    (List.filter
       (fun e -> not (List.mem e.Nano_circuits.Suite.name [ "mult16" ]))
       Nano_circuits.Suite.all)

let prop_equivalence_and_depth =
  QCheck2.Test.make ~name:"balance preserves function, never deepens"
    ~count:60
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let n = Helpers.random_netlist ~seed ~inputs:5 ~gates:25 () in
      let balanced = Balance.run n in
      Netlist.depth balanced <= Netlist.depth n
      &&
      match Nano_synth.Equiv.check n balanced with
      | Nano_synth.Equiv.Equivalent -> true
      | Nano_synth.Equiv.Counterexample _ -> false)

let suite =
  [
    Alcotest.test_case "chains become logarithmic" `Quick
      test_chain_becomes_logarithmic;
    Alcotest.test_case "respects fanout" `Quick test_respects_fanout;
    Alcotest.test_case "arrival-time aware" `Quick test_arrival_time_aware;
    Alcotest.test_case "mixed kinds" `Quick test_mixed_kinds_not_flattened;
    Alcotest.test_case "suite depth never increases" `Quick
      test_suite_depth_never_increases;
    Helpers.qcheck prop_equivalence_and_depth;
  ]
