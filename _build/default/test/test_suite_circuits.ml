module Suite = Nano_circuits.Suite
module Profiles = Nano_circuits.Iscas_profiles
module Netlist = Nano_netlist.Netlist

let test_all_entries_build_and_validate () =
  List.iter
    (fun entry ->
      let n = entry.Suite.build () in
      match Netlist.validate n with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" entry.Suite.name e)
    Suite.all

let test_names_unique () =
  let names = Suite.names () in
  Alcotest.(check int) "no duplicates"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let test_find () =
  Alcotest.(check bool) "find c17" true (Suite.find "c17" <> None);
  Alcotest.(check bool) "find nothing" true (Suite.find "zzz" = None)

let test_partition () =
  Alcotest.(check int) "all = iscas + arithmetic"
    (List.length Suite.all)
    (List.length Suite.iscas_substitutes + List.length Suite.arithmetic)

let test_counterparts_exist () =
  List.iter
    (fun entry ->
      match entry.Suite.iscas_counterpart with
      | None -> ()
      | Some "c17" -> () (* below the classic ten *)
      | Some name ->
        Alcotest.(check bool)
          (name ^ " is a known benchmark")
          true
          (Profiles.find name <> None))
    Suite.all

let test_published_profiles () =
  Alcotest.(check int) "ten classics" 10 (List.length Profiles.all);
  (match Profiles.find "c6288" with
  | Some p ->
    Alcotest.(check int) "c6288 inputs" 32 p.Profiles.inputs;
    Alcotest.(check int) "c6288 outputs" 32 p.Profiles.outputs
  | None -> Alcotest.fail "c6288 missing");
  Alcotest.(check bool) "unknown" true (Profiles.find "c9999" = None)

let test_substitutes_bracket_published_shapes () =
  (* The substitution argument from DESIGN.md: interface shape of each
     substitute matches its counterpart's family. Check the two tightest
     cases. *)
  (match Suite.find "mult16" with
  | Some e ->
    let n = e.Suite.build () in
    Alcotest.(check int) "mult16 inputs like c6288" 32
      (List.length (Netlist.inputs n));
    Alcotest.(check int) "mult16 outputs like c6288" 32
      (List.length (Netlist.outputs n))
  | None -> Alcotest.fail "mult16 missing");
  match Suite.find "sec32" with
  | Some e ->
    let n = e.Suite.build () in
    (* c499: 41 in / 32 out; Hamming(32) needs 6 checks -> 38 in. *)
    Alcotest.(check int) "sec32 inputs" 38 (List.length (Netlist.inputs n));
    Alcotest.(check int) "sec32 outputs" 32 (List.length (Netlist.outputs n))
  | None -> Alcotest.fail "sec32 missing"

let suite =
  [
    Alcotest.test_case "all build and validate" `Quick
      test_all_entries_build_and_validate;
    Alcotest.test_case "names unique" `Quick test_names_unique;
    Alcotest.test_case "find" `Quick test_find;
    Alcotest.test_case "partition" `Quick test_partition;
    Alcotest.test_case "counterparts exist" `Quick test_counterparts_exist;
    Alcotest.test_case "published profiles" `Quick test_published_profiles;
    Alcotest.test_case "substitutes bracket shapes" `Quick
      test_substitutes_bracket_published_shapes;
  ]
