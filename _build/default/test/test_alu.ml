module Alu = Nano_circuits.Alu
module Netlist = Nano_netlist.Netlist

let run_alu netlist ~width ~op ~cin x y =
  let bindings =
    List.concat
      [
        List.init width (fun i -> (Printf.sprintf "a%d" i, (x lsr i) land 1 = 1));
        List.init width (fun i -> (Printf.sprintf "b%d" i, (y lsr i) land 1 = 1));
        List.init 3 (fun i -> (Printf.sprintf "op%d" i, (op lsr i) land 1 = 1));
        [ ("cin", cin) ];
      ]
  in
  let out = Netlist.eval netlist bindings in
  let y_val =
    List.fold_left
      (fun acc i ->
        if List.assoc (Printf.sprintf "y%d" i) out then acc lor (1 lsl i)
        else acc)
      0
      (List.init width (fun i -> i))
  in
  (y_val, List.assoc "cout" out, List.assoc "zero" out)

let reference ~width ~op ~cin x y =
  let mask = (1 lsl width) - 1 in
  match op with
  | 0 -> (x + y + if cin then 1 else 0) land mask
  | 1 -> (x - y) land mask (* two's complement: x + ~y + 1 *)
  | 2 -> x land y
  | 3 -> x lor y
  | 4 -> x lxor y
  | 5 -> Stdlib.lnot (x lor y) land mask
  | 6 -> x
  | 7 -> Stdlib.lnot x land mask
  | _ -> assert false

let test_all_ops_exhaustive_4bit () =
  let width = 4 in
  let netlist = Alu.make ~width in
  for op = 0 to 7 do
    for x = 0 to 15 do
      for y = 0 to 15 do
        let got, _, zero = run_alu netlist ~width ~op ~cin:false x y in
        let expected = reference ~width ~op ~cin:false x y in
        if got <> expected then
          Alcotest.failf "op=%d x=%d y=%d: expected %d got %d" op x y
            expected got;
        if zero <> (expected = 0) then
          Alcotest.failf "zero flag wrong at op=%d x=%d y=%d" op x y
      done
    done
  done

let test_add_carry () =
  let netlist = Alu.make ~width:4 in
  let _, cout, _ = run_alu netlist ~width:4 ~op:0 ~cin:false 15 1 in
  Alcotest.(check bool) "carry out" true cout;
  let sum, cout, zero = run_alu netlist ~width:4 ~op:0 ~cin:true 7 8 in
  Alcotest.(check int) "7+8+1" 0 sum;
  Alcotest.(check bool) "wraps with carry" true cout;
  Alcotest.(check bool) "zero set" true zero

let test_add_with_cin () =
  let netlist = Alu.make ~width:4 in
  let sum, _, _ = run_alu netlist ~width:4 ~op:0 ~cin:true 2 3 in
  Alcotest.(check int) "2+3+1" 6 sum

let test_sub () =
  let netlist = Alu.make ~width:8 in
  let d, _, _ = run_alu netlist ~width:8 ~op:1 ~cin:false 200 55 in
  Alcotest.(check int) "200-55" 145 d;
  let d, _, zero = run_alu netlist ~width:8 ~op:1 ~cin:false 55 55 in
  Alcotest.(check int) "55-55" 0 d;
  Alcotest.(check bool) "zero" true zero

let test_scale () =
  (* alu8 is the c880 counterpart: real c880 is 383 gates, depth 24. *)
  let n = Alu.make ~width:8 in
  Helpers.check_in_range "size" ~lo:150. ~hi:500.
    (float_of_int (Netlist.size n));
  Alcotest.(check int) "inputs" 20 (List.length (Netlist.inputs n))

let prop_random_ops =
  QCheck2.Test.make ~name:"alu8 matches reference on random operands"
    ~count:200
    QCheck2.Gen.(
      quad (int_range 0 7) (int_range 0 255) (int_range 0 255) bool)
    (let netlist = Alu.make ~width:8 in
     fun (op, x, y, cin) ->
       let got, _, _ = run_alu netlist ~width:8 ~op ~cin x y in
       got = reference ~width:8 ~op ~cin x y)

let suite =
  [
    Alcotest.test_case "all ops exhaustive 4-bit" `Quick
      test_all_ops_exhaustive_4bit;
    Alcotest.test_case "add carry" `Quick test_add_carry;
    Alcotest.test_case "add with cin" `Quick test_add_with_cin;
    Alcotest.test_case "sub" `Quick test_sub;
    Alcotest.test_case "scale" `Quick test_scale;
    Helpers.qcheck prop_random_ops;
  ]
