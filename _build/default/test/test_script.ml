module Script = Nano_synth.Script
module Netlist = Nano_netlist.Netlist

let test_rugged_lite_bounds_fanin () =
  List.iter
    (fun entry ->
      let original = entry.Nano_circuits.Suite.build () in
      let mapped = Script.rugged_lite ~max_fanin:3 original in
      Alcotest.(check bool)
        (entry.Nano_circuits.Suite.name ^ " fanin <= 3")
        true
        (Netlist.max_fanin mapped <= 3);
      Helpers.assert_equivalent entry.Nano_circuits.Suite.name original mapped)
    (List.filter
       (fun e -> not (List.mem e.Nano_circuits.Suite.name [ "mult16"; "rca32" ]))
       Nano_circuits.Suite.all)

let test_rugged_lite_shrinks_redundancy () =
  (* A deliberately bloated equivalent of a 2-input AND. *)
  let b = Netlist.Builder.create () in
  let x = Netlist.Builder.input b "x" in
  let y = Netlist.Builder.input b "y" in
  let t1 = Netlist.Builder.and2 b x y in
  let t2 = Netlist.Builder.and2 b y x in
  let dd = Netlist.Builder.not_ b (Netlist.Builder.not_ b t1) in
  Netlist.Builder.output b "o" (Netlist.Builder.or2 b dd t2);
  let bloated = Netlist.Builder.finish b in
  let mapped = Script.rugged_lite bloated in
  Alcotest.(check int) "reduced to one gate" 1 (Netlist.size mapped)

let test_map_only_no_collapse () =
  let n = Nano_circuits.Trees.parity_tree ~inputs:16 ~fanin:8 in
  let mapped = Script.map_only ~max_fanin:2 n in
  Alcotest.(check int) "binary tree" 15 (Netlist.size mapped);
  Helpers.assert_equivalent "parity map" n mapped

let test_collapse_threshold_respected () =
  (* With a huge threshold the XOR-heavy circuit would blow up in
     two-level form; the script must keep the smaller structural
     version. *)
  let n = Nano_circuits.Trees.parity_tree ~inputs:10 ~fanin:2 in
  let mapped = Script.rugged_lite ~collapse_threshold:10 n in
  Alcotest.(check bool) "no two-level blowup" true
    (Netlist.size mapped <= Netlist.size n);
  Helpers.assert_equivalent "parity rugged" n mapped

let test_nand_flow () =
  let n = Nano_circuits.Iscas_like.c17 () in
  let mapped = Script.nand_flow n in
  Helpers.assert_equivalent "c17 nand flow" n mapped;
  (* c17 is already NAND-only: the flow must not blow it up much. *)
  Alcotest.(check bool) "stays small" true (Netlist.size mapped <= 8)

let prop_rugged_lite_stable =
  QCheck2.Test.make ~name:"second rugged_lite pass never grows the result"
    ~count:25
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let n = Helpers.random_netlist ~seed ~inputs:5 ~gates:25 () in
      let once = Script.rugged_lite n in
      let twice = Script.rugged_lite once in
      Netlist.size twice <= Netlist.size once)

let prop_rugged_lite_safe =
  QCheck2.Test.make ~name:"rugged_lite equivalence on random netlists"
    ~count:40
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let n = Helpers.random_netlist ~seed ~inputs:5 ~gates:25 () in
      let mapped = Script.rugged_lite n in
      Netlist.max_fanin mapped <= 3
      &&
      match Nano_synth.Equiv.check n mapped with
      | Nano_synth.Equiv.Equivalent -> true
      | Nano_synth.Equiv.Counterexample _ -> false)

let suite =
  [
    Alcotest.test_case "bounds fanin on suite" `Slow
      test_rugged_lite_bounds_fanin;
    Alcotest.test_case "shrinks redundancy" `Quick
      test_rugged_lite_shrinks_redundancy;
    Alcotest.test_case "map_only" `Quick test_map_only_no_collapse;
    Alcotest.test_case "collapse threshold" `Quick
      test_collapse_threshold_respected;
    Alcotest.test_case "nand flow" `Quick test_nand_flow;
    Helpers.qcheck prop_rugged_lite_safe;
    Helpers.qcheck prop_rugged_lite_stable;
  ]
