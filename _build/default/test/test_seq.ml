module Seq = Nano_seq.Seq_netlist
module Circuits = Nano_seq.Seq_circuits
module Netlist = Nano_netlist.Netlist

let counter_value outputs bits =
  let v = ref 0 in
  for i = 0 to bits - 1 do
    if List.assoc (Printf.sprintf "obs_q%d" i) outputs then
      v := !v lor (1 lsl i)
  done;
  !v

let test_create_validation () =
  let core = Nano_circuits.Adders.ripple_carry ~width:2 in
  (match
     Seq.create ~core
       ~registers:[ { Seq.state = "nosuch"; next = "s0"; init = false } ]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad state port accepted");
  (match
     Seq.create ~core
       ~registers:[ { Seq.state = "a0"; next = "nosuch"; init = false } ]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad next port accepted");
  match
    Seq.create ~core
      ~registers:[ { Seq.state = "a0"; next = "s0"; init = false } ]
  with
  | Ok m ->
    Alcotest.(check int) "one register" 1 (Seq.state_bits m);
    Alcotest.(check bool) "a0 no longer free" true
      (not (List.mem "a0" (Seq.free_inputs m)));
    Alcotest.(check bool) "s0 not observable" true
      (not (List.mem "s0" (Seq.observable_outputs m)))
  | Error e -> Alcotest.fail e

let test_counter_counts () =
  let bits = 4 in
  let m = Circuits.counter ~bits in
  let cycles = 20 in
  let stim = List.init cycles (fun _ -> [ ("en", true) ]) in
  let trace = Seq.simulate m ~inputs:stim in
  List.iteri
    (fun t outputs ->
      Alcotest.(check int)
        (Printf.sprintf "cycle %d" t)
        (t mod 16)
        (counter_value outputs bits))
    trace;
  (* wrap pulse when the counter is at 15 with enable *)
  let wrap_at_15 = List.nth trace 15 in
  Alcotest.(check bool) "wrap" true (List.assoc "wrap" wrap_at_15)

let test_counter_enable () =
  let m = Circuits.counter ~bits:3 in
  let stim =
    [ [ ("en", true) ]; [ ("en", false) ]; [ ("en", false) ]; [ ("en", true) ] ]
  in
  let trace = Seq.simulate m ~inputs:stim in
  Alcotest.(check (list int)) "held while disabled" [ 0; 1; 1; 1 ]
    (List.map (fun o -> counter_value o 3) trace);
  let final = Seq.final_state m ~inputs:stim in
  Alcotest.(check bool) "final = 2" true
    (List.assoc "q1" final && not (List.assoc "q0" final))

let test_shift_register () =
  let m = Circuits.shift_register ~bits:3 in
  let stim =
    List.map (fun b -> [ ("din", b) ]) [ true; false; true; true; false; false ]
  in
  let trace = Seq.simulate m ~inputs:stim in
  let douts = List.map (fun o -> List.assoc "dout" o) trace in
  (* dout lags din by 3 cycles (value before the edge). *)
  Alcotest.(check (list bool)) "delayed stream"
    [ false; false; false; true; false; true ]
    douts

let test_lfsr_period () =
  (* x^4 + x^3 + 1 (taps 3,2) is maximal: period 15. *)
  let m = Circuits.lfsr ~bits:4 ~taps:[ 3; 2 ] in
  let stim = List.init 30 (fun _ -> [ ("scan_en", false) ]) in
  let trace = Seq.simulate m ~inputs:stim in
  let bits = List.map (fun o -> List.assoc "out" o) trace in
  (* sequence must repeat with period 15 and not be constant *)
  let first15 = List.filteri (fun i _ -> i < 15) bits in
  let second15 = List.filteri (fun i _ -> i >= 15) bits in
  Alcotest.(check (list bool)) "period 15" first15 second15;
  Alcotest.(check bool) "not constant" true
    (List.exists (fun b -> b) first15 && List.exists not first15)

let test_accumulator () =
  let width = 4 in
  let m = Circuits.accumulator ~width in
  let stim_of v =
    List.init width (fun i -> (Printf.sprintf "a%d" i, (v lsr i) land 1 = 1))
  in
  let trace = Seq.simulate m ~inputs:(List.map stim_of [ 3; 5; 2; 7 ]) in
  let acc_at t =
    let out = List.nth trace t in
    let v = ref 0 in
    for i = 0 to width - 1 do
      if List.assoc (Printf.sprintf "acc%d" i) out then v := !v lor (1 lsl i)
    done;
    !v
  in
  (* registered value lags by one cycle *)
  Alcotest.(check int) "t0" 0 (acc_at 0);
  Alcotest.(check int) "t1" 3 (acc_at 1);
  Alcotest.(check int) "t2" 8 (acc_at 2);
  Alcotest.(check int) "t3" 10 (acc_at 3)

let test_unroll_matches_simulate () =
  let m = Circuits.counter ~bits:3 in
  let cycles = 5 in
  let unrolled = Seq.unroll m ~cycles in
  (* Drive frame inputs en@t and compare against simulate. *)
  let en_values = [ true; true; false; true; true ] in
  let bindings =
    List.mapi (fun t v -> (Printf.sprintf "en@%d" t, v)) en_values
  in
  let out = Netlist.eval unrolled bindings in
  let trace =
    Seq.simulate m ~inputs:(List.map (fun v -> [ ("en", v) ]) en_values)
  in
  List.iteri
    (fun t cycle_outputs ->
      List.iter
        (fun (name, v) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s@%d" name t)
            v
            (List.assoc (Printf.sprintf "%s@%d" name t) out))
        cycle_outputs)
    trace;
  (* final state outputs present *)
  Alcotest.(check bool) "final state exported" true
    (List.mem_assoc "q0@final" out)

let test_unroll_structure () =
  let m = Circuits.shift_register ~bits:2 in
  let u = Seq.unroll m ~cycles:3 in
  Alcotest.(check int) "3 din inputs" 3 (List.length (Netlist.inputs u));
  (* observable per frame + 2 final-state outputs *)
  Alcotest.(check int) "outputs" (3 + 2) (List.length (Netlist.outputs u))

let test_temporal_activity_counter () =
  (* Counter bit i toggles with probability ~2^-i under full enable; the
     temporal activity must reflect that, unlike the independence
     model. *)
  let m = Circuits.counter ~bits:4 in
  let core = Seq.core m in
  let activity = Seq.temporal_activity ~cycles:4096 ~input_probability:1.0 m in
  (* output d0 toggles every cycle: its node is the xor feeding d0; find
     via output map. *)
  let d0 = List.assoc "d0" (Netlist.outputs core) in
  let d3 = List.assoc "d3" (Netlist.outputs core) in
  Helpers.check_in_range "lsb next toggles ~always" ~lo:0.95 ~hi:1.
    activity.(d0);
  Helpers.check_in_range "msb next toggles rarely" ~lo:0.05 ~hi:0.30
    activity.(d3)

let test_energy_trace () =
  let tech = Nano_energy.Technology.nm90 in
  (* A counter with enable tied high burns roughly constant energy after
     warmup; its LSB logic toggles every cycle. *)
  let m = Circuits.counter ~bits:4 in
  let trace = Seq.energy_trace ~cycles:64 ~input_probability:1.0 ~tech m in
  Alcotest.(check int) "length" 64 (Array.length trace);
  Helpers.check_float "reset entry zero" 0. trace.(0);
  for t = 1 to 63 do
    Alcotest.(check bool) "positive energy" true (trace.(t) > 0.)
  done;
  (* a shift register's core is pure wiring: zero switching energy *)
  let s = Circuits.shift_register ~bits:8 in
  let strace = Seq.energy_trace ~cycles:16 ~tech s in
  Array.iter (fun e -> Helpers.check_float "wiring is free" 0. e) strace;
  (* energy scales with activity: half-rate enable burns less on average *)
  let low =
    Seq.energy_trace ~cycles:512 ~input_probability:0.1 ~tech m
  in
  let high =
    Seq.energy_trace ~cycles:512 ~input_probability:1.0 ~tech m
  in
  let mean a =
    Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)
  in
  Alcotest.(check bool) "rarely enabled burns less" true (mean low < mean high)

let test_map_core () =
  (* rugged_lite over the core must preserve the machine's behaviour
     cycle for cycle. *)
  let m = Circuits.accumulator ~width:6 in
  (match Seq.map_core (Nano_synth.Script.rugged_lite ~max_fanin:3) m with
  | Error e -> Alcotest.fail e
  | Ok optimized ->
    let stim_of v =
      List.init 6 (fun i -> (Printf.sprintf "a%d" i, (v lsr i) land 1 = 1))
    in
    let stim = List.map stim_of [ 5; 9; 63; 2; 17 ] in
    let t1 = Seq.simulate m ~inputs:stim in
    let t2 = Seq.simulate optimized ~inputs:stim in
    List.iteri
      (fun t (o1, o2) ->
        if List.sort compare o1 <> List.sort compare o2 then
          Alcotest.failf "cycle %d differs" t)
      (List.combine t1 t2));
  (* a transformation that drops ports is rejected *)
  let break _core =
    let b = Netlist.Builder.create () in
    let x = Netlist.Builder.input b "only" in
    Netlist.Builder.output b "o" x;
    Netlist.Builder.finish b
  in
  match Seq.map_core break m with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "interface change must be rejected"

let test_profile () =
  let m = Circuits.accumulator ~width:8 in
  let p = Seq.profile ~cycles:1024 m in
  Alcotest.(check bool) "named" true
    (String.length p.Nano_bounds.Profile.name > 4);
  Helpers.check_in_range "sw0 plausible" ~lo:0.05 ~hi:0.95
    p.Nano_bounds.Profile.sw0;
  (* the profile can drive the bounds *)
  let s =
    Nano_bounds.Profile.to_scenario p ~epsilon:0.01 ~delta:0.01
      ~leakage_share0:0.5
  in
  let b = Nano_bounds.Metrics.evaluate s in
  Alcotest.(check bool) "bound computed" true
    (b.Nano_bounds.Metrics.energy_ratio >= 1.)

let prop_unroll_random_stimulus =
  QCheck2.Test.make ~name:"unrolled accumulator matches simulation" ~count:20
    QCheck2.Gen.(list_size (int_range 1 6) (int_range 0 15))
    (let m = Circuits.accumulator ~width:4 in
     fun values ->
       let cycles = List.length values in
       let unrolled = Seq.unroll m ~cycles in
       let stim_of v =
         List.init 4 (fun i -> (Printf.sprintf "a%d" i, (v lsr i) land 1 = 1))
       in
       let trace = Seq.simulate m ~inputs:(List.map stim_of values) in
       let bindings =
         List.concat
           (List.mapi
              (fun t v ->
                List.init 4 (fun i ->
                    (Printf.sprintf "a%d@%d" i t, (v lsr i) land 1 = 1)))
              values)
       in
       let out = Netlist.eval unrolled bindings in
       List.for_all
         (fun (t, cycle_outputs) ->
           List.for_all
             (fun (name, v) ->
               List.assoc (Printf.sprintf "%s@%d" name t) out = v)
             cycle_outputs)
         (List.mapi (fun t o -> (t, o)) trace))

let suite =
  [
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "counter counts" `Quick test_counter_counts;
    Alcotest.test_case "counter enable" `Quick test_counter_enable;
    Alcotest.test_case "shift register" `Quick test_shift_register;
    Alcotest.test_case "lfsr period" `Quick test_lfsr_period;
    Alcotest.test_case "accumulator" `Quick test_accumulator;
    Alcotest.test_case "unroll matches simulate" `Quick
      test_unroll_matches_simulate;
    Alcotest.test_case "unroll structure" `Quick test_unroll_structure;
    Alcotest.test_case "temporal activity" `Quick
      test_temporal_activity_counter;
    Alcotest.test_case "energy trace" `Quick test_energy_trace;
    Alcotest.test_case "map_core" `Quick test_map_core;
    Alcotest.test_case "profile" `Quick test_profile;
    Helpers.qcheck prop_unroll_random_stimulus;
  ]
