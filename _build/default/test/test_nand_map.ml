module Nand_map = Nano_synth.Nand_map
module Netlist = Nano_netlist.Netlist
module Gate = Nano_netlist.Gate

let only_nand_inverter netlist =
  Netlist.fold netlist ~init:true ~f:(fun acc _ info ->
      acc
      &&
      match info.Netlist.kind with
      | Gate.Input | Gate.Const _ | Gate.Buf | Gate.Not -> true
      | Gate.Nand -> Array.length info.Netlist.fanins = 2
      | Gate.And | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor | Gate.Majority
        -> false)

let test_library_restriction () =
  let n = Nano_circuits.Adders.ripple_carry ~width:4 in
  let mapped = Nand_map.run n in
  Alcotest.(check bool) "nand/inv only" true (only_nand_inverter mapped);
  Helpers.assert_equivalent "rca4 nand" n mapped

let test_c499_to_c1355_style_expansion () =
  (* The historic relationship: the NAND expansion computes the same
     function with notably more gates. *)
  let sec = Nano_circuits.Iscas_like.hamming_corrector ~data_bits:8 in
  let expanded = Nano_synth.Script.nand_flow sec in
  Alcotest.(check bool) "bigger" true
    (Netlist.size expanded > Netlist.size (Nano_synth.Strash.run sec));
  Helpers.assert_equivalent "sec8 nand" sec expanded

let test_all_kinds () =
  List.iter
    (fun (kind, arity) ->
      let b = Netlist.Builder.create () in
      let xs =
        List.init arity (fun i ->
            Netlist.Builder.input b (Printf.sprintf "x%d" i))
      in
      Netlist.Builder.output b "o" (Netlist.Builder.add b kind xs);
      let n = Netlist.Builder.finish b in
      let mapped = Nand_map.run n in
      Alcotest.(check bool)
        (Gate.name kind ^ " library")
        true (only_nand_inverter mapped);
      Helpers.assert_equivalent (Gate.name kind) n mapped)
    [
      (Gate.And, 3); (Gate.Or, 3); (Gate.Nand, 3); (Gate.Nor, 3);
      (Gate.Xor, 3); (Gate.Xnor, 2); (Gate.Majority, 3); (Gate.Not, 1);
      (Gate.Buf, 1);
    ]

let prop_random_nand_mapping =
  QCheck2.Test.make ~name:"nand map preserves function on random netlists"
    ~count:60
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let n = Helpers.random_netlist ~seed ~inputs:5 ~gates:20 () in
      let mapped = Nand_map.run n in
      only_nand_inverter mapped
      &&
      match Nano_synth.Equiv.check n mapped with
      | Nano_synth.Equiv.Equivalent -> true
      | Nano_synth.Equiv.Counterexample _ -> false)

let suite =
  [
    Alcotest.test_case "library restriction" `Quick test_library_restriction;
    Alcotest.test_case "c499->c1355 expansion" `Quick
      test_c499_to_c1355_style_expansion;
    Alcotest.test_case "all kinds" `Quick test_all_kinds;
    Helpers.qcheck prop_random_nand_mapping;
  ]
