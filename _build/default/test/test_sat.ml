module Sat = Nano_sat.Sat
module Cnf = Nano_sat.Cnf

let is_sat = function Sat.Sat _ -> true | Sat.Unsat | Sat.Unknown -> false
let is_unsat = function Sat.Unsat -> true | Sat.Sat _ | Sat.Unknown -> false

let test_trivial () =
  Alcotest.(check bool) "empty formula sat" true
    (is_sat (Sat.solve ~nvars:0 []));
  Alcotest.(check bool) "empty clause unsat" true
    (is_unsat (Sat.solve ~nvars:2 [ [ 1 ]; [] ]));
  Alcotest.(check bool) "unit sat" true (is_sat (Sat.solve ~nvars:1 [ [ 1 ] ]));
  Alcotest.(check bool) "contradiction" true
    (is_unsat (Sat.solve ~nvars:1 [ [ 1 ]; [ -1 ] ]))

let test_model_verified () =
  let clauses = [ [ 1; 2 ]; [ -1; 3 ]; [ -2; -3 ]; [ 2; 3 ] ] in
  match Sat.solve ~nvars:3 clauses with
  | Sat.Sat model ->
    Alcotest.(check bool) "model verifies" true
      (Sat.verify ~nvars:3 clauses model)
  | Sat.Unsat | Sat.Unknown -> Alcotest.fail "satisfiable instance"

let test_chain_propagation () =
  (* 1 -> 2 -> ... -> 50, with unit 1 and unit -50: unsat via pure
     propagation. *)
  let implications =
    List.init 49 (fun i -> [ -(i + 1); i + 2 ])
  in
  Alcotest.(check bool) "implication chain" true
    (is_unsat (Sat.solve ~nvars:50 ([ 1 ] :: [ -50 ] :: implications)))

let pigeonhole ~pigeons ~holes =
  let var i h = (i * holes) + h + 1 in
  let each_pigeon =
    List.init pigeons (fun i -> List.init holes (fun h -> var i h))
  in
  let no_sharing =
    List.concat_map
      (fun h ->
        List.concat_map
          (fun i ->
            List.filter_map
              (fun j ->
                if j > i then Some [ -(var i h); -(var j h) ] else None)
              (List.init pigeons (fun j -> j)))
          (List.init pigeons (fun i -> i)))
      (List.init holes (fun h -> h))
  in
  (pigeons * holes, each_pigeon @ no_sharing)

let test_pigeonhole () =
  (* PHP(n+1, n): classically unsat; PHP(7,6) needs real clause learning
     to finish quickly. *)
  let nvars, clauses = pigeonhole ~pigeons:4 ~holes:3 in
  Alcotest.(check bool) "PHP(4,3) unsat" true
    (is_unsat (Sat.solve ~nvars clauses));
  let nvars, clauses = pigeonhole ~pigeons:7 ~holes:6 in
  Alcotest.(check bool) "PHP(7,6) unsat" true
    (is_unsat (Sat.solve ~nvars clauses));
  (* and the satisfiable variant with equal counts *)
  let nvars, clauses = pigeonhole ~pigeons:5 ~holes:5 in
  Alcotest.(check bool) "PHP(5,5) sat" true
    (is_sat (Sat.solve ~nvars clauses))

let test_multiplier_miter () =
  (* Array vs carry-save 4x4 multipliers: a genuinely non-trivial UNSAT
     miter that plain DPLL struggles with. *)
  let a = Nano_circuits.Multipliers.array_multiplier ~width:4 in
  let b = Nano_circuits.Multipliers.carry_save_multiplier ~width:4 in
  match Cnf.equivalent ~max_conflicts:500_000 a b with
  | `Equivalent -> ()
  | `Counterexample _ -> Alcotest.fail "multipliers are equivalent"
  | `Unknown -> Alcotest.fail "budget exhausted"

let brute_force ~nvars clauses =
  let rec go a =
    if a >= 1 lsl nvars then false
    else begin
      let assignment = Array.init (nvars + 1) (fun v -> v > 0 && (a lsr (v - 1)) land 1 = 1) in
      Sat.verify ~nvars clauses assignment || go (a + 1)
    end
  in
  go 0

let prop_matches_brute_force =
  QCheck2.Test.make ~name:"DPLL agrees with brute force on random 3-SAT"
    ~count:150
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 3 9))
    (fun (seed, nvars) ->
      let rng = Nano_util.Prng.create ~seed in
      let n_clauses = 2 + Nano_util.Prng.int rng ~bound:(4 * nvars) in
      let clauses =
        List.init n_clauses (fun _ ->
            List.init 3 (fun _ ->
                let v = 1 + Nano_util.Prng.int rng ~bound:nvars in
                if Nano_util.Prng.bool rng then v else -v))
      in
      let expected = brute_force ~nvars clauses in
      match Sat.solve ~nvars clauses with
      | Sat.Sat model -> expected && Sat.verify ~nvars clauses model
      | Sat.Unsat -> not expected
      | Sat.Unknown -> false)

let test_tseitin_consistency () =
  (* Models of the encoding restricted to inputs/outputs must match the
     circuit: force each output value and check a model exists iff the
     circuit can produce it. *)
  let netlist = Nano_circuits.Iscas_like.c17 () in
  let e = Cnf.of_netlist netlist in
  let g22 = List.assoc "g22" e.Cnf.output_var in
  (* c17 can produce both 0 and 1 on g22 *)
  Alcotest.(check bool) "g22 can be 1" true
    (is_sat (Sat.solve ~nvars:e.Cnf.nvars ([ g22 ] :: e.Cnf.clauses)));
  Alcotest.(check bool) "g22 can be 0" true
    (is_sat (Sat.solve ~nvars:e.Cnf.nvars ([ -g22 ] :: e.Cnf.clauses)));
  (* and any Sat model must be consistent with real evaluation *)
  match Sat.solve ~nvars:e.Cnf.nvars ([ g22 ] :: e.Cnf.clauses) with
  | Sat.Sat model ->
    let bindings =
      List.map (fun (nm, v) -> (nm, model.(v))) e.Cnf.input_var
    in
    let out = Nano_netlist.Netlist.eval netlist bindings in
    List.iter
      (fun (nm, v) ->
        Alcotest.(check bool) nm (List.assoc nm out) model.(v))
      e.Cnf.output_var
  | Sat.Unsat | Sat.Unknown -> Alcotest.fail "sat expected"

let test_miter_equivalent () =
  let a = Nano_circuits.Adders.ripple_carry ~width:6 in
  let b = Nano_circuits.Adders.carry_lookahead ~width:6 in
  match Cnf.equivalent a b with
  | `Equivalent -> ()
  | `Counterexample _ -> Alcotest.fail "adders are equivalent"
  | `Unknown -> Alcotest.fail "budget exhausted on a small miter"

let test_miter_counterexample () =
  let xor_gate =
    let b = Nano_netlist.Netlist.Builder.create () in
    let x = Nano_netlist.Netlist.Builder.input b "x" in
    let y = Nano_netlist.Netlist.Builder.input b "y" in
    Nano_netlist.Netlist.Builder.output b "o"
      (Nano_netlist.Netlist.Builder.xor2 b x y);
    Nano_netlist.Netlist.Builder.finish b
  in
  let or_gate =
    let b = Nano_netlist.Netlist.Builder.create () in
    let x = Nano_netlist.Netlist.Builder.input b "x" in
    let y = Nano_netlist.Netlist.Builder.input b "y" in
    Nano_netlist.Netlist.Builder.output b "o"
      (Nano_netlist.Netlist.Builder.or2 b x y);
    Nano_netlist.Netlist.Builder.finish b
  in
  match Cnf.equivalent xor_gate or_gate with
  | `Counterexample cex ->
    let a = Nano_netlist.Netlist.eval xor_gate cex in
    let b = Nano_netlist.Netlist.eval or_gate cex in
    Alcotest.(check bool) "real counterexample" true (a <> b)
  | `Equivalent -> Alcotest.fail "xor <> or"
  | `Unknown -> Alcotest.fail "tiny miter"

let test_majority_encoding () =
  (* NMR voter netlists use wide majorities: check maj5 via SAT against
     direct evaluation on every assignment. *)
  let maj5 =
    let b = Nano_netlist.Netlist.Builder.create () in
    let xs =
      List.init 5 (fun i -> Nano_netlist.Netlist.Builder.input b (Printf.sprintf "x%d" i))
    in
    Nano_netlist.Netlist.Builder.output b "o"
      (Nano_netlist.Netlist.Builder.add b Nano_netlist.Gate.Majority xs);
    Nano_netlist.Netlist.Builder.finish b
  in
  let e = Cnf.of_netlist maj5 in
  let o = List.assoc "o" e.Cnf.output_var in
  (* the encoding with output forced to 1 must admit exactly the
     >=3-ones inputs: check a positive and a negative case by adding
     input units *)
  let unit_for value (nm, v) = if value nm then [ v ] else [ -v ] in
  let force bits =
    List.map (unit_for (fun nm -> List.mem nm bits)) e.Cnf.input_var
  in
  Alcotest.(check bool) "3 ones -> o must be 1" true
    (is_unsat
       (Sat.solve ~nvars:e.Cnf.nvars
          (([ -o ] :: force [ "x0"; "x1"; "x2" ]) @ e.Cnf.clauses)));
  Alcotest.(check bool) "2 ones -> o must be 0" true
    (is_unsat
       (Sat.solve ~nvars:e.Cnf.nvars
          (([ o ] :: force [ "x0"; "x1" ]) @ e.Cnf.clauses)))

let prop_sat_equiv_matches_bdd =
  QCheck2.Test.make ~name:"SAT equivalence agrees with BDD backend" ~count:30
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 0 100000))
    (fun (s1, s2) ->
      let a = Helpers.random_netlist ~seed:s1 ~inputs:5 ~gates:18 () in
      let b =
        if s1 = s2 then a
        else Helpers.random_netlist ~seed:s2 ~inputs:5 ~gates:18 ()
      in
      let bdd_verdict =
        match Nano_synth.Equiv.bdd a b with
        | Some Nano_synth.Equiv.Equivalent -> true
        | Some (Nano_synth.Equiv.Counterexample _) -> false
        | None -> true (* cannot happen at this size *)
      in
      match Cnf.equivalent a b with
      | `Equivalent -> bdd_verdict
      | `Counterexample _ -> not bdd_verdict
      | `Unknown -> false)

let suite =
  [
    Alcotest.test_case "trivial" `Quick test_trivial;
    Alcotest.test_case "model verified" `Quick test_model_verified;
    Alcotest.test_case "chain propagation" `Quick test_chain_propagation;
    Alcotest.test_case "pigeonhole" `Quick test_pigeonhole;
    Alcotest.test_case "multiplier miter" `Quick test_multiplier_miter;
    Alcotest.test_case "tseitin consistency" `Quick test_tseitin_consistency;
    Alcotest.test_case "miter equivalent" `Quick test_miter_equivalent;
    Alcotest.test_case "miter counterexample" `Quick test_miter_counterexample;
    Alcotest.test_case "majority encoding" `Quick test_majority_encoding;
    Helpers.qcheck prop_matches_brute_force;
    Helpers.qcheck prop_sat_equiv_matches_bdd;
  ]
