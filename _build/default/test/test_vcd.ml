module Vcd = Nano_seq.Vcd

let contains needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_header_and_vars () =
  let s = Vcd.of_signals [ ("clk_en", [ true; false ]) ] in
  Alcotest.(check bool) "timescale" true (contains "$timescale 1 ns $end" s);
  Alcotest.(check bool) "var decl" true
    (contains "$var wire 1 ! clk_en $end" s);
  Alcotest.(check bool) "enddefinitions" true
    (contains "$enddefinitions $end" s)

let test_only_changes_dumped () =
  let s =
    Vcd.of_signals
      [ ("a", [ false; false; true; true; false ]); ("b", [ true; true; true; true; true ]) ]
  in
  (* a changes at t=2 and t=4; b never changes after dumpvars. *)
  Alcotest.(check bool) "t2 present" true (contains "#2\n1!" s);
  Alcotest.(check bool) "t4 present" true (contains "#4\n0!" s);
  Alcotest.(check bool) "no t1 section" false (contains "#1\n" s);
  Alcotest.(check bool) "no t3 section" false (contains "#3\n" s);
  (* b's identifier is '"' and must appear only in dumpvars *)
  let occurrences =
    List.length
      (String.split_on_char '"' s)
    - 1
  in
  Alcotest.(check int) "b dumped once" 2 occurrences
(* once in $var line? no — '"' appears in the $var decl and dumpvars *)

let test_validation () =
  Helpers.check_invalid "ragged" (fun () ->
      ignore (Vcd.of_signals [ ("a", [ true ]); ("b", [ true; false ]) ]));
  Helpers.check_invalid "duplicate" (fun () ->
      ignore (Vcd.of_signals [ ("a", [ true ]); ("a", [ false ]) ]));
  Helpers.check_invalid "empty" (fun () -> ignore (Vcd.of_signals []))

let test_identifier_uniqueness () =
  (* 200 signals exercise the multi-character identifier path. *)
  let signals =
    List.init 200 (fun i -> (Printf.sprintf "s%d" i, [ i mod 2 = 0; false ]))
  in
  let s = Vcd.of_signals signals in
  Alcotest.(check bool) "renders" true (String.length s > 0);
  (* all $var ids distinct *)
  let ids =
    String.split_on_char '\n' s
    |> List.filter_map (fun line ->
           match String.split_on_char ' ' line with
           | [ "$var"; "wire"; "1"; id; _; "$end" ] -> Some id
           | _ -> None)
  in
  Alcotest.(check int) "200 vars" 200 (List.length ids);
  Alcotest.(check int) "unique ids" 200
    (List.length (List.sort_uniq compare ids))

let test_of_simulation () =
  let m = Nano_seq.Seq_circuits.counter ~bits:2 in
  let stim = List.init 4 (fun _ -> [ ("en", true) ]) in
  let s = Vcd.of_simulation m ~inputs:stim in
  Alcotest.(check bool) "en declared" true (contains " en $end" s);
  Alcotest.(check bool) "obs_q0 declared" true (contains " obs_q0 $end" s);
  Alcotest.(check bool) "wrap declared" true (contains " wrap $end" s);
  (* counter bit 0 toggles at every cycle: there must be #1 #2 #3 *)
  Alcotest.(check bool) "t1" true (contains "#1\n" s);
  Alcotest.(check bool) "t3" true (contains "#3\n" s)

let test_write_file () =
  let m = Nano_seq.Seq_circuits.shift_register ~bits:2 in
  let path = Filename.temp_file "nanobound" ".vcd" in
  Vcd.write_file ~path m
    ~inputs:[ [ ("din", true) ]; [ ("din", false) ] ];
  let ic = open_in path in
  let first = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "file starts with $date" "$date" first

let suite =
  [
    Alcotest.test_case "header and vars" `Quick test_header_and_vars;
    Alcotest.test_case "only changes dumped" `Quick test_only_changes_dumped;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "identifier uniqueness" `Quick
      test_identifier_uniqueness;
    Alcotest.test_case "of_simulation" `Quick test_of_simulation;
    Alcotest.test_case "write_file" `Quick test_write_file;
  ]
