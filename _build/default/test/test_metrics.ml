module Metrics = Nano_bounds.Metrics
module Figures = Nano_bounds.Figures

let scenario epsilon = { Figures.parity10 with Metrics.epsilon }

let test_corollary2_reference () =
  (* Corollary 2 at the Figure 5/6 baseline (sw0 = 1/2 is the activity
     fixed point, so the energy ratio equals the size ratio). *)
  let b = Metrics.evaluate (scenario 0.01) in
  Helpers.check_loose "activity ratio 1" 1. b.Metrics.activity_ratio;
  Helpers.check_loose "energy = size ratio" b.Metrics.size_ratio
    b.Metrics.energy_ratio;
  Helpers.check_loose "switching-energy bound too" b.Metrics.size_ratio
    b.Metrics.switching_energy_ratio

let test_low_activity_circuit () =
  (* With sw0 < 1/2 the activity ratio exceeds 1 and adds to the
     switching-energy bound. *)
  let s = { (scenario 0.05) with Metrics.sw0 = 0.2 } in
  let b = Metrics.evaluate s in
  Alcotest.(check bool) "activity ratio > 1" true (b.Metrics.activity_ratio > 1.);
  Alcotest.(check bool) "idle ratio < 1" true (b.Metrics.idle_ratio < 1.);
  Helpers.check_loose "switching bound = size * activity"
    (b.Metrics.size_ratio *. b.Metrics.activity_ratio)
    b.Metrics.switching_energy_ratio;
  (* Total energy interpolates switching and leakage with lambda0. *)
  let expected =
    b.Metrics.size_ratio
    *. ((0.5 *. b.Metrics.activity_ratio) +. (0.5 *. b.Metrics.idle_ratio))
  in
  Helpers.check_loose "total energy" expected b.Metrics.energy_ratio

let test_composites () =
  let b = Metrics.evaluate (scenario 0.05) in
  match b.Metrics.delay_ratio, b.Metrics.energy_delay_ratio,
        b.Metrics.average_power_ratio with
  | Some d, Some ed, Some p ->
    Helpers.check_loose "edp = e*d" (b.Metrics.energy_ratio *. d) ed;
    Helpers.check_loose "power = e/d" (b.Metrics.energy_ratio /. d) p
  | _ -> Alcotest.fail "expected feasible delay"

let test_infeasible_region () =
  (* Past the fanin-2 threshold the delay bound must disappear. *)
  let b = Metrics.evaluate (scenario 0.2) in
  Alcotest.(check bool) "delay None" true (b.Metrics.delay_ratio = None);
  Alcotest.(check bool) "edp None" true (b.Metrics.energy_delay_ratio = None);
  (* but the energy bound still exists *)
  Alcotest.(check bool) "energy still bounded" true
    (b.Metrics.energy_ratio > 1.)

let test_power_crossover () =
  (* Figure 6's story: power overhead at small eps, power *saving* near
     the feasibility edge (delay blows up faster than energy). *)
  let power eps =
    match (Metrics.evaluate (scenario eps)).Metrics.average_power_ratio with
    | Some p -> p
    | None -> Alcotest.failf "unexpected infeasible at %g" eps
  in
  Alcotest.(check bool) "overhead at 1e-3" true (power 0.001 > 1.);
  Alcotest.(check bool) "saving at 0.14" true (power 0.14 < 1.)

let test_fanin_reduces_power_overhead () =
  (* Paper: "a larger fanin reduces the overhead in average power" at
     low error rates. *)
  let power fanin =
    match
      (Metrics.evaluate { (scenario 0.005) with Metrics.fanin })
        .Metrics.average_power_ratio
    with
    | Some p -> p
    | None -> Alcotest.fail "feasible"
  in
  Alcotest.(check bool) "k=3 below k=2" true (power 3 <= power 2);
  Alcotest.(check bool) "k=4 below k=3" true (power 4 <= power 3)

let test_headline_overhead () =
  let overhead =
    Metrics.headline_energy_overhead ~epsilon:0.01 ~delta:0.01 (scenario 0.3)
  in
  Helpers.check_in_range "parity10 at 1%" ~lo:0.2 ~hi:0.25 overhead

let test_scenario_validation () =
  Alcotest.(check bool) "valid" true (Metrics.scenario_valid (scenario 0.1));
  Alcotest.(check bool) "sw0 = 0 invalid" false
    (Metrics.scenario_valid { (scenario 0.1) with Metrics.sw0 = 0. });
  Alcotest.(check bool) "leakage share 1 invalid" false
    (Metrics.scenario_valid
       { (scenario 0.1) with Metrics.leakage_share0 = 1. });
  Helpers.check_invalid "evaluate invalid" (fun () ->
      ignore (Metrics.evaluate { (scenario 0.1) with Metrics.inputs = 0 }))

let prop_energy_bound_exceeds_one =
  QCheck2.Test.make ~name:"energy lower bound is always >= ~1" ~count:300
    QCheck2.Gen.(triple (float_range 0.001 0.45) (float_range 0.05 0.95)
                   (int_range 2 6))
    (fun (epsilon, sw0, fanin) ->
      let s = { (scenario epsilon) with Metrics.sw0; fanin } in
      let b = Metrics.evaluate s in
      (* size_ratio >= 1 and the activity/idle mix with lambda = 1/2 is
         >= ~0.999 (numerics), so the product stays near or above 1. *)
      b.Metrics.energy_ratio >= 0.99)

let prop_energy_monotone_in_epsilon =
  QCheck2.Test.make ~name:"energy bound monotone in eps (sw0=1/2)" ~count:200
    QCheck2.Gen.(pair (float_range 0.001 0.4) (float_range 1.01 1.2))
    (fun (eps, f) ->
      let e1 = (Metrics.evaluate (scenario eps)).Metrics.energy_ratio in
      let e2 =
        (Metrics.evaluate (scenario (Float.min 0.49 (eps *. f))))
          .Metrics.energy_ratio
      in
      e2 >= e1 -. 1e-9)

let test_explain () =
  let s = scenario 0.01 in
  let text = Metrics.explain s in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("mentions " ^ needle) true (contains needle))
    [ "Theorem 2"; "Theorem 1"; "Corollary 2"; "Theorem 4"; "omega"; "xi" ];
  (* the printed size ratio matches the computed one *)
  let b = Metrics.evaluate s in
  Alcotest.(check bool) "consistent numbers" true
    (contains (Printf.sprintf "%.6g" b.Metrics.size_ratio));
  (* infeasible scenarios say so *)
  let text = Metrics.explain (scenario 0.3) in
  let contains_inf =
    let needle = "INFEASIBLE" in
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "infeasible reported" true contains_inf;
  Helpers.check_invalid "invalid scenario" (fun () ->
      ignore (Metrics.explain { s with Metrics.inputs = 0 }))

let suite =
  [
    Alcotest.test_case "explain" `Quick test_explain;
    Alcotest.test_case "Corollary 2 reference" `Quick test_corollary2_reference;
    Alcotest.test_case "low-activity circuit" `Quick test_low_activity_circuit;
    Alcotest.test_case "composite metrics" `Quick test_composites;
    Alcotest.test_case "infeasible region" `Quick test_infeasible_region;
    Alcotest.test_case "power crossover" `Quick test_power_crossover;
    Alcotest.test_case "fanin reduces power overhead" `Quick
      test_fanin_reduces_power_overhead;
    Alcotest.test_case "headline overhead" `Quick test_headline_overhead;
    Alcotest.test_case "scenario validation" `Quick test_scenario_validation;
    Helpers.qcheck prop_energy_bound_exceeds_one;
    Helpers.qcheck prop_energy_monotone_in_epsilon;
  ]
