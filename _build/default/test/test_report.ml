module Report = Nano_report.Report

let test_number () =
  Alcotest.(check string) "simple" "1.5" (Report.Table.number 1.5);
  Alcotest.(check string) "rounded" "3.142" (Report.Table.number ~decimals:4 3.14159);
  Alcotest.(check string) "inf" "inf" (Report.Table.number infinity);
  Alcotest.(check string) "nan" "-" (Report.Table.number Float.nan)

let test_table_alignment () =
  let s =
    Report.Table.render ~header:[ "name"; "value" ]
      ~rows:[ [ "x"; "1" ]; [ "longer"; "22" ] ]
  in
  let lines = String.split_on_char '\n' s in
  (* header, separator, 2 rows, trailing empty *)
  Alcotest.(check int) "line count" 5 (List.length lines);
  (* all non-empty lines share the same width *)
  let widths =
    List.filter_map
      (fun l -> if l = "" then None else Some (String.length l))
      lines
  in
  Alcotest.(check bool) "aligned" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_table_ragged_rows () =
  let s =
    Report.Table.render ~header:[ "a"; "b"; "c" ] ~rows:[ [ "1" ]; [ "2"; "3" ] ]
  in
  Alcotest.(check bool) "renders without exception" true (String.length s > 0)

let test_series_merges_grids () =
  let s =
    Report.Series.render ~title:"t" ~x_label:"x" ~y_label:"y"
      [ ("a", [ (1., 10.); (2., 20.) ]); ("b", [ (2., 200.); (3., 300.) ]) ]
  in
  (* x = 2 row must contain both 20 and 200; x = 1 has a gap for b. *)
  Alcotest.(check bool) "contains title" true
    (String.length s > 0
    &&
    let contains needle hay =
      let n = String.length needle and h = String.length hay in
      let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
      go 0
    in
    contains "== t ==" s && contains "20" s && contains "300" s)

let test_csv_escaping () =
  let s =
    Report.Csv.to_string ~header:[ "a"; "b" ]
      ~rows:[ [ "plain"; "with,comma" ]; [ "quote\"inside"; "x" ] ]
  in
  Alcotest.(check string) "escaped"
    "a,b\nplain,\"with,comma\"\n\"quote\"\"inside\",x\n" s

let test_csv_write_file () =
  let path = Filename.temp_file "nanobound_test" ".csv" in
  Report.Csv.write_file ~path ~header:[ "h" ] ~rows:[ [ "v" ] ];
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "header written" "h" line

let test_chart_renders () =
  let s =
    Nano_report.Chart.render ~title:"demo"
      [
        ("rising", [ (0., 0.); (1., 1.); (2., 2.) ]);
        ("falling", [ (0., 2.); (1., 1.); (2., 0.) ]);
      ]
  in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check bool) "title present" true
    (List.exists (fun l -> l = "== demo ==") lines);
  (* both glyphs appear *)
  Alcotest.(check bool) "glyph *" true (String.contains s '*');
  Alcotest.(check bool) "glyph +" true (String.contains s '+');
  (* legend lines *)
  Alcotest.(check bool) "legend" true
    (List.exists (fun l -> l = "  * rising") lines)

let test_chart_log_scale () =
  let s =
    Nano_report.Chart.render ~x_scale:Nano_report.Chart.Log ~title:"log"
      [ ("a", [ (0.001, 1.); (0.01, 2.); (0.1, 4.); (0., 9.) ]) ]
  in
  (* the x=0 point is dropped on a log axis, no exception *)
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_chart_degenerate () =
  let s = Nano_report.Chart.render ~title:"empty" [ ("a", []) ] in
  Alcotest.(check bool) "message not crash" true
    (String.length s > 0);
  let s = Nano_report.Chart.render ~title:"point" [ ("a", [ (1., 1.) ]) ] in
  Alcotest.(check bool) "single point ok" true (String.length s > 0)

let suite =
  [
    Alcotest.test_case "chart renders" `Quick test_chart_renders;
    Alcotest.test_case "chart log scale" `Quick test_chart_log_scale;
    Alcotest.test_case "chart degenerate" `Quick test_chart_degenerate;
    Alcotest.test_case "number" `Quick test_number;
    Alcotest.test_case "table alignment" `Quick test_table_alignment;
    Alcotest.test_case "ragged rows" `Quick test_table_ragged_rows;
    Alcotest.test_case "series merge" `Quick test_series_merges_grids;
    Alcotest.test_case "csv escaping" `Quick test_csv_escaping;
    Alcotest.test_case "csv write file" `Quick test_csv_write_file;
  ]
