module Switching = Nano_bounds.Switching

let test_formula () =
  (* Theorem 1 at eps = 0.1: sw' = 0.64 sw + 0.18. *)
  Helpers.check_float "sw=0.3" 0.372 (Switching.noisy_activity ~epsilon:0.1 0.3);
  Helpers.check_float "identity at eps=0" 0.3
    (Switching.noisy_activity ~epsilon:0. 0.3);
  Helpers.check_float "constant at eps=1/2" 0.5
    (Switching.noisy_activity ~epsilon:0.5 0.123)

let test_fixed_point () =
  Helpers.check_float "value" 0.5 Switching.fixed_point;
  List.iter
    (fun epsilon ->
      Helpers.check_float "invariant" 0.5
        (Switching.noisy_activity ~epsilon 0.5))
    [ 0.; 0.01; 0.3; 0.5 ]

let test_domain () =
  Helpers.check_invalid "eps too big" (fun () ->
      ignore (Switching.noisy_activity ~epsilon:0.6 0.1));
  Helpers.check_invalid "eps negative" (fun () ->
      ignore (Switching.noisy_activity ~epsilon:(-0.1) 0.1));
  Helpers.check_invalid "sw out of range" (fun () ->
      ignore (Switching.noisy_activity ~epsilon:0.1 1.5));
  Alcotest.(check bool) "valid domain" true (Switching.valid_epsilon 0.25);
  Alcotest.(check bool) "invalid" false (Switching.valid_epsilon 0.75)

let test_inverse () =
  let epsilon = 0.1 in
  (match Switching.inverse ~epsilon (Switching.noisy_activity ~epsilon 0.3) with
  | Some sw -> Helpers.check_loose "roundtrip" 0.3 sw
  | None -> Alcotest.fail "expected inverse");
  Alcotest.(check bool) "no inverse at 1/2" true
    (Switching.inverse ~epsilon:0.5 0.4 = None);
  (* sw_z below the reachable band has no preimage *)
  Alcotest.(check bool) "unreachable" true
    (Switching.inverse ~epsilon:0.2 0.01 = None)

let test_contraction_factor () =
  Helpers.check_float "eps 0" 1. (Switching.contraction_factor ~epsilon:0.);
  Helpers.check_float "eps 0.25" 0.25
    (Switching.contraction_factor ~epsilon:0.25);
  Helpers.check_float "eps 0.5" 0. (Switching.contraction_factor ~epsilon:0.5)

let test_probability_map () =
  Helpers.check_float "p map" 0.34
    (Switching.noisy_probability ~epsilon:0.1 0.3);
  Helpers.check_float "activity of p" 0.42
    (Switching.activity_of_probability 0.3)

(* The paper's Figure 2 observation: noise pushes activity toward 1/2,
   making quiet gates busier and busy gates quieter. *)
let prop_toward_half =
  QCheck2.Test.make ~name:"noise drives activity toward 1/2" ~count:300
    QCheck2.Gen.(pair (float_range 0.001 0.499) (float_range 0. 1.))
    (fun (epsilon, sw) ->
      let sw' = Switching.noisy_activity ~epsilon sw in
      if sw < 0.5 then sw' >= sw && sw' <= 0.5
      else sw' <= sw && sw' >= 0.5)

let prop_monotone_in_sw =
  QCheck2.Test.make ~name:"map is increasing in sw" ~count:300
    QCheck2.Gen.(triple (float_range 0. 0.49) (float_range 0. 1.) (float_range 0. 1.))
    (fun (epsilon, a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Switching.noisy_activity ~epsilon lo
      <= Switching.noisy_activity ~epsilon hi +. 1e-12)

let prop_matches_simulation =
  (* End-to-end: Theorem 1 against Monte-Carlo fault injection on a
     single gate. *)
  QCheck2.Test.make ~name:"Theorem 1 matches fault injection" ~count:8
    QCheck2.Gen.(float_range 0.01 0.3)
    (fun epsilon ->
      let b = Nano_netlist.Netlist.Builder.create () in
      let x = Nano_netlist.Netlist.Builder.input b "x" in
      let y = Nano_netlist.Netlist.Builder.input b "y" in
      Nano_netlist.Netlist.Builder.output b "o"
        (Nano_netlist.Netlist.Builder.and2 b x y);
      let n = Nano_netlist.Netlist.Builder.finish b in
      let r = Nano_faults.Noisy_sim.simulate ~vectors:200000 ~epsilon n in
      (* AND of uniform inputs: sw0 = 3/8. *)
      let predicted = Switching.noisy_activity ~epsilon 0.375 in
      Float.abs (r.Nano_faults.Noisy_sim.average_gate_activity -. predicted)
      < 0.01)

let suite =
  [
    Alcotest.test_case "formula" `Quick test_formula;
    Alcotest.test_case "fixed point" `Quick test_fixed_point;
    Alcotest.test_case "domain" `Quick test_domain;
    Alcotest.test_case "inverse" `Quick test_inverse;
    Alcotest.test_case "contraction factor" `Quick test_contraction_factor;
    Alcotest.test_case "probability map" `Quick test_probability_map;
    Helpers.qcheck prop_toward_half;
    Helpers.qcheck prop_monotone_in_sw;
    Helpers.qcheck prop_matches_simulation;
  ]
