module Dimacs = Nano_sat.Dimacs
module Sat = Nano_sat.Sat

let test_render () =
  let s = Dimacs.to_string ~nvars:3 [ [ 1; -2 ]; [ 3 ] ] in
  Alcotest.(check string) "format" "p cnf 3 2\n1 -2 0\n3 0\n" s

let test_roundtrip () =
  let clauses = [ [ 1; -2; 3 ]; [ -1 ]; [ 2; -3 ] ] in
  match Dimacs.parse_string (Dimacs.to_string ~nvars:3 clauses) with
  | Ok (nvars, parsed) ->
    Alcotest.(check int) "nvars" 3 nvars;
    Alcotest.(check (list (list int))) "clauses" clauses parsed
  | Error e -> Alcotest.fail e

let test_comments_and_blanks () =
  let text = "c a comment\n\np cnf 2 1\nc another\n1 2 0\n" in
  match Dimacs.parse_string text with
  | Ok (2, [ [ 1; 2 ] ]) -> ()
  | Ok _ -> Alcotest.fail "wrong parse"
  | Error e -> Alcotest.fail e

let test_multiline_clause () =
  (* a clause may span lines until its terminating 0 *)
  let text = "p cnf 3 1\n1 2\n3 0\n" in
  match Dimacs.parse_string text with
  | Ok (3, [ [ 1; 2; 3 ] ]) -> ()
  | Ok _ -> Alcotest.fail "wrong parse"
  | Error e -> Alcotest.fail e

let test_errors () =
  let expect_error text =
    match Dimacs.parse_string text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected error for %S" text
  in
  expect_error "1 2 0\n";
  (* clause before header *)
  expect_error "p cnf 2 1\n5 0\n";
  (* literal out of range *)
  expect_error "p cnf 2 2\n1 0\n";
  (* clause count mismatch *)
  expect_error "p cnf 2 1\n1 2\n";
  (* unterminated clause *)
  expect_error "p something 2 1\n1 0\n"

let test_file_roundtrip_through_solver () =
  (* Export a miter, re-parse it, solve: same verdict. *)
  let a = Nano_circuits.Adders.ripple_carry ~width:3 in
  let b = Nano_circuits.Adders.carry_lookahead ~width:3 in
  let encoding, m = Nano_sat.Cnf.miter a b in
  let clauses = [ m ] :: encoding.Nano_sat.Cnf.clauses in
  let path = Filename.temp_file "nanobound" ".cnf" in
  Dimacs.write_file ~path ~nvars:encoding.Nano_sat.Cnf.nvars clauses;
  let result =
    match Dimacs.parse_file path with
    | Ok (nvars, parsed) -> Sat.solve ~nvars parsed
    | Error e -> Alcotest.fail e
  in
  Sys.remove path;
  match result with
  | Sat.Unsat -> () (* equivalent adders: miter unsat *)
  | Sat.Sat _ -> Alcotest.fail "adders differ?!"
  | Sat.Unknown -> Alcotest.fail "budget"

let suite =
  [
    Alcotest.test_case "render" `Quick test_render;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "comments/blanks" `Quick test_comments_and_blanks;
    Alcotest.test_case "multiline clause" `Quick test_multiline_clause;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "file roundtrip through solver" `Quick
      test_file_roundtrip_through_solver;
  ]
