module Trees = Nano_circuits.Trees
module Netlist = Nano_netlist.Netlist

let eval1 netlist out bits =
  let bindings =
    List.mapi (fun i b -> (Printf.sprintf "x%d" i, b)) bits
  in
  List.assoc out (Netlist.eval netlist bindings)

let test_parity_tree_function () =
  let n = Trees.parity_tree ~inputs:7 ~fanin:3 in
  for a = 0 to 127 do
    let bits = List.init 7 (fun i -> (a lsr i) land 1 = 1) in
    let expected = List.length (List.filter Fun.id bits) land 1 = 1 in
    if eval1 n "parity" bits <> expected then
      Alcotest.failf "parity mismatch at %d" a
  done

let test_parity_tree_structure () =
  let n2 = Trees.parity_tree ~inputs:16 ~fanin:2 in
  Alcotest.(check int) "binary gates" 15 (Netlist.size n2);
  Alcotest.(check int) "binary depth" 4 (Netlist.depth n2);
  let n4 = Trees.parity_tree ~inputs:16 ~fanin:4 in
  Alcotest.(check int) "quaternary gates" 5 (Netlist.size n4);
  Alcotest.(check int) "quaternary depth" 2 (Netlist.depth n4)

let test_and_or_trees () =
  let a = Trees.and_tree ~inputs:5 ~fanin:2 in
  Alcotest.(check bool) "all ones" true
    (eval1 a "y" [ true; true; true; true; true ]);
  Alcotest.(check bool) "one zero" false
    (eval1 a "y" [ true; true; false; true; true ]);
  let o = Trees.or_tree ~inputs:5 ~fanin:3 in
  Alcotest.(check bool) "all zero" false
    (eval1 o "y" [ false; false; false; false; false ]);
  Alcotest.(check bool) "one one" true
    (eval1 o "y" [ false; false; true; false; false ])

let test_majority_tree () =
  let n = Trees.majority_tree ~inputs:9 in
  Alcotest.(check int) "four maj3 gates" 4 (Netlist.size n);
  (* A recursive-majority tree with all-equal leaves returns that
     value. *)
  Alcotest.(check bool) "all ones" true
    (eval1 n "maj" (List.init 9 (fun _ -> true)));
  Alcotest.(check bool) "all zeros" false
    (eval1 n "maj" (List.init 9 (fun _ -> false)));
  Helpers.check_invalid "non power of 3" (fun () ->
      ignore (Trees.majority_tree ~inputs:6))

let test_mux_tree () =
  let n = Trees.mux_tree ~select_bits:3 in
  for sel = 0 to 7 do
    for data_bit = 0 to 7 do
      let bindings =
        List.concat
          [
            List.init 3 (fun i ->
                (Printf.sprintf "sel%d" i, (sel lsr i) land 1 = 1));
            List.init 8 (fun i -> (Printf.sprintf "d%d" i, i = data_bit));
          ]
      in
      let out = List.assoc "y" (Netlist.eval n bindings) in
      Alcotest.(check bool)
        (Printf.sprintf "sel=%d hot=%d" sel data_bit)
        (sel = data_bit) out
    done
  done

let test_decoder () =
  let n = Trees.decoder ~bits:3 in
  for v = 0 to 7 do
    let bindings =
      List.init 3 (fun i -> (Printf.sprintf "s%d" i, (v lsr i) land 1 = 1))
    in
    let out = Netlist.eval n bindings in
    for line = 0 to 7 do
      Alcotest.(check bool)
        (Printf.sprintf "v=%d line=%d" v line)
        (line = v)
        (List.assoc (Printf.sprintf "y%d" line) out)
    done
  done

let test_comparator () =
  let width = 4 in
  let n = Trees.comparator ~width in
  for x = 0 to 15 do
    for y = 0 to 15 do
      let bindings =
        List.concat
          [
            List.init width (fun i ->
                (Printf.sprintf "a%d" i, (x lsr i) land 1 = 1));
            List.init width (fun i ->
                (Printf.sprintf "b%d" i, (y lsr i) land 1 = 1));
          ]
      in
      let out = Netlist.eval n bindings in
      Alcotest.(check bool) "eq" (x = y) (List.assoc "eq" out);
      Alcotest.(check bool) "gt" (x > y) (List.assoc "gt" out);
      Alcotest.(check bool) "lt" (x < y) (List.assoc "lt" out)
    done
  done

let prop_parity_any_fanin =
  QCheck2.Test.make ~name:"parity trees correct for any fanin" ~count:40
    QCheck2.Gen.(triple (int_range 1 24) (int_range 2 5) (int_range 0 1000000))
    (fun (inputs, fanin, a) ->
      let n = Trees.parity_tree ~inputs ~fanin in
      let bits = List.init inputs (fun i -> (a lsr (i mod 20)) land 1 = 1) in
      let expected = List.length (List.filter Fun.id bits) land 1 = 1 in
      eval1 n "parity" bits = expected)

let suite =
  [
    Alcotest.test_case "parity function" `Quick test_parity_tree_function;
    Alcotest.test_case "parity structure" `Quick test_parity_tree_structure;
    Alcotest.test_case "and/or trees" `Quick test_and_or_trees;
    Alcotest.test_case "majority tree" `Quick test_majority_tree;
    Alcotest.test_case "mux tree" `Quick test_mux_tree;
    Alcotest.test_case "decoder" `Quick test_decoder;
    Alcotest.test_case "comparator" `Quick test_comparator;
    Helpers.qcheck prop_parity_any_fanin;
  ]
