module BE = Nano_bounds.Benchmark_eval
module Profile = Nano_bounds.Profile

let rca8_profile () =
  Profile.of_netlist
    (Nano_synth.Script.rugged_lite (Nano_circuits.Adders.ripple_carry ~width:8))

let test_paper_constants () =
  Alcotest.(check (list (float 0.))) "epsilons" [ 0.001; 0.01; 0.1 ]
    BE.paper_epsilons;
  Helpers.check_float "delta" 0.01 BE.paper_delta

let test_row_fields () =
  let p = rca8_profile () in
  let row = BE.evaluate_profile p ~epsilon:0.01 in
  Alcotest.(check string) "name" "rca8" row.BE.benchmark;
  Helpers.check_float "delta default" 0.01 row.BE.delta;
  Alcotest.(check bool) "energy > 1" true (row.BE.energy_ratio > 1.);
  Alcotest.(check bool) "size > 1" true (row.BE.size_ratio > 1.);
  (match row.BE.delay_ratio with
  | Some d -> Alcotest.(check bool) "delay >= 1" true (d >= 1.)
  | None -> Alcotest.fail "rca8 at 1% must be feasible")

let test_suite_shape () =
  let p = rca8_profile () in
  let rows = BE.evaluate_suite [ p; { p with Profile.name = "copy" } ] in
  Alcotest.(check int) "profiles x epsilons" 6 (List.length rows);
  (* grouped by benchmark: first three rows belong to rca8 *)
  let names = List.map (fun r -> r.BE.benchmark) rows in
  Alcotest.(check (list string)) "grouping"
    [ "rca8"; "rca8"; "rca8"; "copy"; "copy"; "copy" ]
    names

let test_figure7_shape () =
  (* The paper's qualitative claims for Figure 7: bounds increase
     significantly with higher error rates. *)
  let p = rca8_profile () in
  let energy eps = (BE.evaluate_profile p ~epsilon:eps).BE.energy_ratio in
  Alcotest.(check bool) "monotone" true
    (energy 0.001 < energy 0.01 && energy 0.01 < energy 0.1);
  Alcotest.(check bool) "substantial at 0.1" true (energy 0.1 > 1.5)

let test_figure8_shape () =
  (* Average power drops below 1 at the high error rate for fanin-2-ish
     circuits (delay explodes); EDP keeps growing. *)
  let p = rca8_profile () in
  let row_low = BE.evaluate_profile p ~epsilon:0.001 in
  let row_high = BE.evaluate_profile p ~epsilon:0.1 in
  (match row_low.BE.average_power_ratio, row_high.BE.average_power_ratio with
  | Some lo, Some hi ->
    Alcotest.(check bool) "power overhead at low eps" true (lo > 1.);
    Alcotest.(check bool) "power saving at high eps" true (hi < 1.)
  | _ -> Alcotest.fail "feasible range expected");
  match row_low.BE.energy_delay_ratio, row_high.BE.energy_delay_ratio with
  | Some lo, Some hi -> Alcotest.(check bool) "edp grows" true (hi > lo)
  | _ -> Alcotest.fail "feasible range expected"

let test_leakage_share_matters () =
  let p = rca8_profile () in
  (* For a low-activity circuit the 50% leakage assumption softens the
     energy bound versus a switching-only accounting. *)
  let p = { p with Profile.sw0 = 0.2 } in
  let with_leak =
    (BE.evaluate_profile ~leakage_share0:0.5 p ~epsilon:0.05).BE.energy_ratio
  in
  let no_leak =
    (BE.evaluate_profile ~leakage_share0:0.0 p ~epsilon:0.05).BE.energy_ratio
  in
  Alcotest.(check bool) "switching-only is larger" true (no_leak > with_leak)

let suite =
  [
    Alcotest.test_case "paper constants" `Quick test_paper_constants;
    Alcotest.test_case "row fields" `Quick test_row_fields;
    Alcotest.test_case "suite shape" `Quick test_suite_shape;
    Alcotest.test_case "figure 7 shape" `Quick test_figure7_shape;
    Alcotest.test_case "figure 8 shape" `Quick test_figure8_shape;
    Alcotest.test_case "leakage share matters" `Quick test_leakage_share_matters;
  ]
