(* Shared utilities for the test suite. *)

let approx = Alcotest.float 1e-9
let loose = Alcotest.float 1e-6

let check_float = Alcotest.check approx
let check_loose = Alcotest.check loose

let check_in_range msg ~lo ~hi x =
  if not (x >= lo && x <= hi) then
    Alcotest.failf "%s: %g not in [%g, %g]" msg x lo hi

let check_invalid msg f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" msg

let qcheck = QCheck_alcotest.to_alcotest ~speed_level:`Quick

(* ------------------------------------------------------------------ *)
(* Random netlists for property tests.                                 *)
(* ------------------------------------------------------------------ *)

module Netlist = Nano_netlist.Netlist
module Gate = Nano_netlist.Gate

(* A random combinational netlist with [inputs] primary inputs and
   [gates] logic gates; deterministic in [seed]. *)
let random_netlist ~seed ~inputs ~gates () =
  let rng = Nano_util.Prng.create ~seed in
  let b = Netlist.Builder.create ~name:(Printf.sprintf "rand%d" seed) () in
  let nodes = ref [] in
  for i = 0 to inputs - 1 do
    nodes := Netlist.Builder.input b (Printf.sprintf "x%d" i) :: !nodes
  done;
  let pick () =
    let arr = Array.of_list !nodes in
    arr.(Nano_util.Prng.int rng ~bound:(Array.length arr))
  in
  for _ = 1 to gates do
    let kind =
      match Nano_util.Prng.int rng ~bound:9 with
      | 0 -> Gate.Not
      | 1 -> Gate.And
      | 2 -> Gate.Or
      | 3 -> Gate.Nand
      | 4 -> Gate.Nor
      | 5 -> Gate.Xor
      | 6 -> Gate.Xnor
      | 7 -> Gate.Majority
      | _ -> Gate.Buf
    in
    let arity =
      match kind with
      | Gate.Not | Gate.Buf -> 1
      | Gate.Majority -> 3
      | Gate.And | Gate.Or | Gate.Nand | Gate.Nor | Gate.Xor | Gate.Xnor ->
        2 + Nano_util.Prng.int rng ~bound:2
      | Gate.Input | Gate.Const _ -> 0
    in
    let fanins = List.init arity (fun _ -> pick ()) in
    nodes := Netlist.Builder.add b kind fanins :: !nodes
  done;
  (* Expose a handful of nodes (always including the newest) as outputs. *)
  let arr = Array.of_list !nodes in
  Netlist.Builder.output b "f0" arr.(0);
  if Array.length arr > 1 then Netlist.Builder.output b "f1" arr.(1);
  Netlist.Builder.output b "f2" (pick ());
  Netlist.Builder.finish b

let assert_equivalent msg a b =
  match Nano_synth.Equiv.check a b with
  | Nano_synth.Equiv.Equivalent -> ()
  | Nano_synth.Equiv.Counterexample cex ->
    Alcotest.failf "%s: differ at %s" msg
      (String.concat ", "
         (List.map (fun (n, v) -> Printf.sprintf "%s=%b" n v) cex))

(* Evaluate one netlist output as an int given integer operand encoding
   helpers; used by arithmetic-circuit tests. *)
let eval_outputs netlist bindings = Netlist.eval netlist bindings

let nat_of_bits bits =
  List.fold_left (fun acc (i, b) -> if b then acc lor (1 lsl i) else acc) 0 bits
