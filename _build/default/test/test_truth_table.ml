module TT = Nano_logic.Truth_table
module Std = Nano_logic.Std_functions

let test_const_var () =
  let t = TT.const ~arity:3 true in
  Alcotest.(check int) "all ones" 8 (TT.ones t);
  let f = TT.const ~arity:3 false in
  Alcotest.(check int) "no ones" 0 (TT.ones f);
  let x1 = TT.var ~arity:3 1 in
  Alcotest.(check bool) "x1 at 010" true (TT.eval x1 0b010);
  Alcotest.(check bool) "x1 at 101" false (TT.eval x1 0b101);
  Alcotest.(check int) "half ones" 4 (TT.ones x1)

let test_operators () =
  let open TT in
  let a = var ~arity:2 0 in
  let b = var ~arity:2 1 in
  Alcotest.(check string) "and" "0001" (to_string (a &&& b));
  Alcotest.(check string) "or" "0111" (to_string (a ||| b));
  Alcotest.(check string) "xor" "0110" (to_string (a ^^^ b));
  Alcotest.(check string) "not a" "1010" (to_string (lnot a))

let test_eval_bits () =
  let maj = Std.majority ~arity:3 in
  Alcotest.(check bool) "maj(1,1,0)" true
    (TT.eval_bits maj [| true; true; false |]);
  Alcotest.(check bool) "maj(1,0,0)" false
    (TT.eval_bits maj [| true; false; false |])

let test_probability_activity () =
  let a = TT.var ~arity:4 0 in
  Helpers.check_float "p(var)" 0.5 (TT.signal_probability a);
  Helpers.check_float "sw(var)" 0.5 (TT.switching_activity a);
  let and4 = Std.and_all ~arity:4 in
  Helpers.check_float "p(and4)" (1. /. 16.) (TT.signal_probability and4);
  Helpers.check_float "sw(and4)"
    (2. *. (1. /. 16.) *. (15. /. 16.))
    (TT.switching_activity and4)

let test_cofactor () =
  let a = TT.var ~arity:2 0 in
  let b = TT.var ~arity:2 1 in
  let f = TT.(a &&& b) in
  let f1 = TT.cofactor f ~var:0 true in
  (* f|a=1 should equal b *)
  Alcotest.(check bool) "cofactor = b" true
    (TT.equal f1 (TT.var ~arity:2 1));
  let f0 = TT.cofactor f ~var:0 false in
  Alcotest.(check bool) "cofactor = 0" true
    (TT.equal f0 (TT.const ~arity:2 false))

let test_support () =
  let a = TT.var ~arity:4 0 in
  let c = TT.var ~arity:4 2 in
  let f = TT.(a ^^^ c) in
  Alcotest.(check (list int)) "support" [ 0; 2 ] (TT.support f);
  Alcotest.(check bool) "depends 0" true (TT.depends_on f 0);
  Alcotest.(check bool) "not depends 1" false (TT.depends_on f 1)

let test_sensitivity () =
  Alcotest.(check int) "parity5" 5 (TT.sensitivity (Std.parity ~arity:5));
  Alcotest.(check int) "and3" 3 (TT.sensitivity (Std.and_all ~arity:3));
  Alcotest.(check int) "const" 0 (TT.sensitivity (TT.const ~arity:4 true));
  (* maj3: at (1,1,0) only the two ones are pivotal -> s = 2 *)
  Alcotest.(check int) "maj3" 2 (TT.sensitivity (Std.majority ~arity:3));
  (* average sensitivity of parity is the arity; of AND it is tiny *)
  Helpers.check_float "avg parity4" 4.
    (TT.average_sensitivity (Std.parity ~arity:4));
  Alcotest.(check bool) "avg and4 < 1" true
    (TT.average_sensitivity (Std.and_all ~arity:4) < 1.)

let test_minterms_roundtrip () =
  let f = Std.majority ~arity:3 in
  Alcotest.(check (list int)) "minterms" [ 3; 5; 6; 7 ] (TT.minterms f);
  let s = TT.to_string f in
  Alcotest.(check bool) "roundtrip" true
    (TT.equal f (TT.of_string ~arity:3 s))

let prop_demorgan =
  QCheck2.Test.make ~name:"De Morgan on random tables"
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 1 6))
    (fun (seed, arity) ->
      let rng = Nano_util.Prng.create ~seed in
      let random_tt () =
        TT.create ~arity (fun _ -> Nano_util.Prng.bool rng)
      in
      let a = random_tt () and b = random_tt () in
      TT.(equal (lnot (a &&& b)) (lnot a ||| lnot b)))

let prop_xor_self =
  QCheck2.Test.make ~name:"f xor f = 0"
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 1 6))
    (fun (seed, arity) ->
      let rng = Nano_util.Prng.create ~seed in
      let n = arity in
      let f = TT.create ~arity:n (fun _ -> Nano_util.Prng.bool rng) in
      TT.(equal (f ^^^ f) (const ~arity:n false)))

let prop_shannon_expansion =
  QCheck2.Test.make ~name:"Shannon expansion reconstructs f"
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 1 5))
    (fun (seed, arity) ->
      let rng = Nano_util.Prng.create ~seed in
      let f = TT.create ~arity (fun _ -> Nano_util.Prng.bool rng) in
      let x = TT.var ~arity 0 in
      let f1 = TT.cofactor f ~var:0 true in
      let f0 = TT.cofactor f ~var:0 false in
      TT.(equal f ((x &&& f1) ||| (lnot x &&& f0))))

let suite =
  [
    Alcotest.test_case "const/var" `Quick test_const_var;
    Alcotest.test_case "operators" `Quick test_operators;
    Alcotest.test_case "eval_bits" `Quick test_eval_bits;
    Alcotest.test_case "probability/activity" `Quick test_probability_activity;
    Alcotest.test_case "cofactor" `Quick test_cofactor;
    Alcotest.test_case "support" `Quick test_support;
    Alcotest.test_case "sensitivity" `Quick test_sensitivity;
    Alcotest.test_case "minterms/roundtrip" `Quick test_minterms_roundtrip;
    Helpers.qcheck prop_demorgan;
    Helpers.qcheck prop_xor_self;
    Helpers.qcheck prop_shannon_expansion;
  ]
