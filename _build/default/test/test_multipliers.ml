module Multipliers = Nano_circuits.Multipliers
module Netlist = Nano_netlist.Netlist

let multiply_via netlist ~width x y =
  let bindings =
    List.concat
      [
        List.init width (fun i -> (Printf.sprintf "a%d" i, (x lsr i) land 1 = 1));
        List.init width (fun i -> (Printf.sprintf "b%d" i, (y lsr i) land 1 = 1));
      ]
  in
  let out = Netlist.eval netlist bindings in
  List.fold_left
    (fun acc i ->
      if List.assoc (Printf.sprintf "p%d" i) out then acc lor (1 lsl i)
      else acc)
    0
    (List.init (2 * width) (fun i -> i))

let exhaustive name build width =
  let netlist = build ~width in
  for x = 0 to (1 lsl width) - 1 do
    for y = 0 to (1 lsl width) - 1 do
      let got = multiply_via netlist ~width x y in
      if got <> x * y then
        Alcotest.failf "%s: %d * %d = %d, got %d" name x y (x * y) got
    done
  done

let test_array_exhaustive () =
  exhaustive "array3" Multipliers.array_multiplier 3;
  exhaustive "array4" Multipliers.array_multiplier 4

let test_carry_save_exhaustive () =
  exhaustive "cs3" Multipliers.carry_save_multiplier 3;
  exhaustive "cs4" Multipliers.carry_save_multiplier 4

let test_width1 () =
  let netlist = Multipliers.array_multiplier ~width:1 in
  Alcotest.(check int) "1*1" 1 (multiply_via netlist ~width:1 1 1);
  Alcotest.(check int) "1*0" 0 (multiply_via netlist ~width:1 1 0)

let test_equivalent_architectures () =
  Helpers.assert_equivalent "array = carry-save"
    (Multipliers.array_multiplier ~width:5)
    (Multipliers.carry_save_multiplier ~width:5)

let test_carry_save_shallower () =
  let a = Multipliers.array_multiplier ~width:8 in
  let c = Multipliers.carry_save_multiplier ~width:8 in
  Alcotest.(check bool) "wallace is shallower" true
    (Netlist.depth c < Netlist.depth a)

let test_c6288_scale () =
  (* The c6288 counterpart: 16x16 array multiplier. The real c6288 has
     2406 gates / depth 124; our AND+FA construction lands in the same
     regime. *)
  let n = Multipliers.array_multiplier ~width:16 in
  Helpers.check_in_range "size" ~lo:900. ~hi:3000.
    (float_of_int (Netlist.size n));
  Helpers.check_in_range "depth" ~lo:40. ~hi:130.
    (float_of_int (Netlist.depth n))

let prop_random_products =
  QCheck2.Test.make ~name:"mult8 multiplies random numbers" ~count:60
    QCheck2.Gen.(pair (int_range 0 255) (int_range 0 255))
    (let netlist = Multipliers.array_multiplier ~width:8 in
     fun (x, y) -> multiply_via netlist ~width:8 x y = x * y)

let prop_carry_save_random =
  QCheck2.Test.make ~name:"csmult8 multiplies random numbers" ~count:60
    QCheck2.Gen.(pair (int_range 0 255) (int_range 0 255))
    (let netlist = Multipliers.carry_save_multiplier ~width:8 in
     fun (x, y) -> multiply_via netlist ~width:8 x y = x * y)

let suite =
  [
    Alcotest.test_case "array exhaustive" `Quick test_array_exhaustive;
    Alcotest.test_case "carry-save exhaustive" `Quick
      test_carry_save_exhaustive;
    Alcotest.test_case "width 1" `Quick test_width1;
    Alcotest.test_case "equivalent architectures" `Quick
      test_equivalent_architectures;
    Alcotest.test_case "carry-save shallower" `Quick test_carry_save_shallower;
    Alcotest.test_case "c6288 scale" `Quick test_c6288_scale;
    Helpers.qcheck prop_random_products;
    Helpers.qcheck prop_carry_save_random;
  ]
