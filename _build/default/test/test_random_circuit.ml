module RC = Nano_circuits.Random_circuit
module Netlist = Nano_netlist.Netlist

let test_deterministic () =
  let a = RC.generate ~seed:42 () in
  let b = RC.generate ~seed:42 () in
  Helpers.assert_equivalent "same seed same circuit" a b;
  Alcotest.(check int) "same size" (Netlist.size a) (Netlist.size b)

let test_config_respected () =
  let config =
    {
      RC.inputs = 7;
      gates = 40;
      outputs = 5;
      allow_majority = false;
      max_fanin = 2;
    }
  in
  let n = RC.generate ~config ~seed:1 () in
  Alcotest.(check int) "inputs" 7 (List.length (Netlist.inputs n));
  Alcotest.(check int) "outputs" 5 (List.length (Netlist.outputs n));
  Alcotest.(check bool) "fanin bound" true (Netlist.max_fanin n <= 2);
  (* no majority gates *)
  let has_maj =
    Netlist.fold n ~init:false ~f:(fun acc _ info ->
        acc || info.Netlist.kind = Nano_netlist.Gate.Majority)
  in
  Alcotest.(check bool) "no majority" false has_maj

let test_validation () =
  Helpers.check_invalid "inputs 0" (fun () ->
      ignore
        (RC.generate ~config:{ RC.default_config with RC.inputs = 0 } ~seed:0 ()));
  Helpers.check_invalid "outputs 0" (fun () ->
      ignore
        (RC.generate ~config:{ RC.default_config with RC.outputs = 0 } ~seed:0 ()))

let prop_always_valid =
  QCheck2.Test.make ~name:"generated circuits always validate" ~count:100
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
      let n = RC.generate ~seed () in
      Netlist.validate n = Ok ())

let prop_zero_gates_ok =
  QCheck2.Test.make ~name:"zero-gate configs work" ~count:20
    QCheck2.Gen.(int_range 0 10000)
    (fun seed ->
      let config = { RC.default_config with RC.gates = 0 } in
      let n = RC.generate ~config ~seed () in
      Netlist.size n = 0 && Netlist.validate n = Ok ())

let suite =
  [
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "config respected" `Quick test_config_respected;
    Alcotest.test_case "validation" `Quick test_validation;
    Helpers.qcheck prop_always_valid;
    Helpers.qcheck prop_zero_gates_ok;
  ]
