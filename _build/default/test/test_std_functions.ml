module Std = Nano_logic.Std_functions
module TT = Nano_logic.Truth_table

let test_parity () =
  let p = Std.parity ~arity:4 in
  Alcotest.(check bool) "0000" false (TT.eval p 0);
  Alcotest.(check bool) "0001" true (TT.eval p 1);
  Alcotest.(check bool) "0011" false (TT.eval p 3);
  Alcotest.(check bool) "1111" false (TT.eval p 15);
  Alcotest.(check bool) "0111" true (TT.eval p 7);
  Alcotest.(check int) "balanced" 8 (TT.ones p)

let test_majority () =
  let m = Std.majority ~arity:5 in
  Alcotest.(check bool) "2 of 5" false (TT.eval m 0b00011);
  Alcotest.(check bool) "3 of 5" true (TT.eval m 0b00111);
  Alcotest.(check int) "self-dual balance" 16 (TT.ones m)

let test_and_or () =
  Alcotest.(check int) "and ones" 1 (TT.ones (Std.and_all ~arity:5));
  Alcotest.(check int) "or ones" 31 (TT.ones (Std.or_all ~arity:5))

let test_mux () =
  let m = Std.mux ~select_bits:2 in
  (* inputs: sel0 sel1 d0 d1 d2 d3; selecting d_k *)
  Alcotest.(check int) "arity" 6 (TT.arity m);
  (* sel = 2 (sel0=0, sel1=1), d2 = 1 => output 1 *)
  let a = 0b010000 lor 0b10 in
  Alcotest.(check bool) "select d2" true (TT.eval m a);
  (* sel = 2, d2 = 0, all other d = 1 => output 0 *)
  let a = 0b101100 lor 0b10 in
  Alcotest.(check bool) "d2 low" false (TT.eval m a)

let test_adder_bits () =
  let width = 3 in
  let sum_ok = ref true in
  for x = 0 to 7 do
    for y = 0 to 7 do
      let assignment = x lor (y lsl width) in
      for bit = 0 to width - 1 do
        let expected = ((x + y) lsr bit) land 1 = 1 in
        let f = Std.adder_sum_bit ~width ~bit in
        if TT.eval f assignment <> expected then sum_ok := false
      done;
      let cout = Std.adder_carry_out ~width in
      if TT.eval cout assignment <> (x + y >= 8) then sum_ok := false
    done
  done;
  Alcotest.(check bool) "adder truth tables correct" true !sum_ok

let test_comparator () =
  let width = 3 in
  let f = Std.comparator_greater ~width in
  let ok = ref true in
  for x = 0 to 7 do
    for y = 0 to 7 do
      let assignment = x lor (y lsl width) in
      if TT.eval f assignment <> (x > y) then ok := false
    done
  done;
  Alcotest.(check bool) "comparator correct" true !ok

let test_threshold () =
  let t = Std.threshold ~arity:4 ~k:2 in
  Alcotest.(check bool) "one bit" false (TT.eval t 0b0001);
  Alcotest.(check bool) "two bits" true (TT.eval t 0b0101);
  Alcotest.(check bool) "k=0 tautology" true
    (TT.equal (Std.threshold ~arity:3 ~k:0) (TT.const ~arity:3 true))

let prop_parity_sensitivity =
  QCheck2.Test.make ~name:"parity has full sensitivity"
    QCheck2.Gen.(int_range 1 8)
    (fun n -> TT.sensitivity (Std.parity ~arity:n) = n)

let prop_majority_selfdual =
  QCheck2.Test.make ~name:"majority is self-dual"
    QCheck2.Gen.(int_range 1 3)
    (fun k ->
      let n = (2 * k) + 1 in
      let m = Std.majority ~arity:n in
      (* maj(~x) = ~maj(x) *)
      let ok = ref true in
      for a = 0 to (1 lsl n) - 1 do
        let complement = a lxor ((1 lsl n) - 1) in
        if TT.eval m complement <> not (TT.eval m a) then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "parity" `Quick test_parity;
    Alcotest.test_case "majority" `Quick test_majority;
    Alcotest.test_case "and/or" `Quick test_and_or;
    Alcotest.test_case "mux" `Quick test_mux;
    Alcotest.test_case "adder bits" `Quick test_adder_bits;
    Alcotest.test_case "comparator" `Quick test_comparator;
    Alcotest.test_case "threshold" `Quick test_threshold;
    Helpers.qcheck prop_parity_sensitivity;
    Helpers.qcheck prop_majority_selfdual;
  ]
