module Criticality = Nano_faults.Criticality
module Netlist = Nano_netlist.Netlist
module B = Nano_netlist.Netlist.Builder

let test_output_gate_fully_observable () =
  (* A flip at the output gate is always visible. *)
  let b = B.create () in
  let x = B.input b "x" in
  let y = B.input b "y" in
  let g = B.and2 b x y in
  B.output b "o" g;
  let n = B.finish b in
  let r = Criticality.analyze n in
  Helpers.check_float "output gate" 1. r.Criticality.observability.(g)

let test_masked_gate () =
  (* g = x & y feeds h = g & 0 -> h is constant 0; a flip at g is
     masked... but h itself flips the output. Build: out = and(g, z)
     with z mostly 0: observability of g = P(z=1) = 1/2. *)
  let b = B.create () in
  let x = B.input b "x" in
  let y = B.input b "y" in
  let z = B.input b "z" in
  let g = B.xor2 b x y in
  let out = B.and2 b g z in
  B.output b "o" out;
  let n = B.finish b in
  let r = Criticality.analyze ~vectors:65536 n in
  Helpers.check_in_range "g masked by z" ~lo:0.48 ~hi:0.52
    r.Criticality.observability.(g);
  Helpers.check_float "out full" 1. r.Criticality.observability.(out)

let test_parity_tree_all_critical () =
  (* Every xor gate in a parity tree propagates any flip. *)
  let n = Nano_circuits.Trees.parity_tree ~inputs:8 ~fanin:2 in
  let r = Criticality.analyze ~vectors:256 n in
  List.iter
    (fun id ->
      Helpers.check_float
        (Printf.sprintf "gate %d" id)
        1.
        r.Criticality.observability.(id))
    (Criticality.ranked_gates n r)

let test_ranking () =
  let n = Nano_circuits.Adders.ripple_carry ~width:8 in
  let r = Criticality.analyze ~vectors:4096 n in
  let ranked = Criticality.ranked_gates n r in
  Alcotest.(check int) "all gates ranked" (Netlist.size n)
    (List.length ranked);
  (* ranking is by decreasing observability *)
  let rec decreasing = function
    | a :: b :: rest ->
      r.Criticality.observability.(a) >= r.Criticality.observability.(b)
      && decreasing (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (decreasing ranked)

let test_top_fraction () =
  let n = Nano_circuits.Adders.ripple_carry ~width:4 in
  let r = Criticality.analyze ~vectors:1024 n in
  Alcotest.(check int) "none" 0
    (List.length (Criticality.top_fraction n r ~fraction:0.));
  Alcotest.(check int) "all" (Netlist.size n)
    (List.length (Criticality.top_fraction n r ~fraction:1.));
  let half = Criticality.top_fraction n r ~fraction:0.5 in
  Alcotest.(check bool) "about half" true
    (List.length half = (Netlist.size n + 1) / 2);
  Helpers.check_invalid "fraction > 1" (fun () ->
      ignore (Criticality.top_fraction n r ~fraction:1.5))

let test_determinism () =
  let n = Helpers.random_netlist ~seed:8 ~inputs:4 ~gates:15 () in
  let a = Criticality.analyze ~seed:3 n in
  let b = Criticality.analyze ~seed:3 n in
  Alcotest.(check (array (float 0.))) "reproducible"
    a.Criticality.observability b.Criticality.observability

let suite =
  [
    Alcotest.test_case "output gate observable" `Quick
      test_output_gate_fully_observable;
    Alcotest.test_case "masked gate" `Quick test_masked_gate;
    Alcotest.test_case "parity all critical" `Quick
      test_parity_tree_all_critical;
    Alcotest.test_case "ranking" `Quick test_ranking;
    Alcotest.test_case "top fraction" `Quick test_top_fraction;
    Alcotest.test_case "determinism" `Quick test_determinism;
  ]
