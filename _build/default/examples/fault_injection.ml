(* Empirical validation of the paper's device model (Figure 1 /
   Theorem 1): inject symmetric-channel noise into every gate of a
   mapped circuit and compare

   - the measured average gate switching activity against Theorem 1's
     closed form sw(z) = (1-2e)^2 sw(y) + 2e(1-e), and
   - the measured output error rate delta_hat against the requested
     resilience levels, showing how fast an unprotected circuit falls
     off the 99%-reliability cliff.

   Run with: dune exec examples/fault_injection.exe *)

let () =
  let circuit =
    Nano_synth.Script.rugged_lite
      (Nano_circuits.Iscas_like.hamming_corrector ~data_bits:16)
  in
  let clean = Nano_sim.Activity.monte_carlo ~vectors:16384 circuit in
  let sw0 = clean.Nano_sim.Activity.average_gate_activity in
  Printf.printf "circuit: %s  (size %d, depth %d)\n"
    (Nano_netlist.Netlist.name circuit)
    (Nano_netlist.Netlist.size circuit)
    (Nano_netlist.Netlist.depth circuit);
  Printf.printf "error-free average gate activity sw0 = %.4f\n\n" sw0;
  let rows =
    List.map
      (fun epsilon ->
        let sim =
          Nano_faults.Noisy_sim.simulate ~vectors:16384 ~epsilon circuit
        in
        let predicted =
          Nano_bounds.Switching.noisy_activity ~epsilon sw0
        in
        let n = Nano_report.Report.Table.number in
        [
          n epsilon;
          n predicted;
          n sim.Nano_faults.Noisy_sim.average_gate_activity;
          n sim.Nano_faults.Noisy_sim.any_output_error;
          n (Nano_faults.Noisy_sim.output_reliability sim);
        ])
      [ 0.0; 0.001; 0.01; 0.05; 0.1; 0.2; 0.3; 0.5 ]
  in
  print_string
    (Nano_report.Report.Table.render
       ~header:
         [
           "eps";
           "sw(z) Thm1";
           "sw(z) measured";
           "delta_hat";
           "P(correct)";
         ]
       ~rows);
  print_newline ();
  (* Where Theorem 1 is exact: per-gate, the noisy activity of each
     individual gate output follows the formula applied to that gate's
     own noisy inputs; the table above applies it to the average as the
     paper does for generic circuits (redundant logic assumed to behave
     like the original on average). The residual gap at large eps is the
     input-correlation term the average-case model ignores. *)
  let epsilon = 0.01 in
  let sim = Nano_faults.Noisy_sim.simulate ~vectors:16384 ~epsilon circuit in
  Printf.printf
    "at eps=1%%: an unprotected SEC decoder only delivers all outputs \
     correctly %.1f%% of the time — fault tolerance must come from \
     redundancy, which is exactly the energy cost the bounds quantify.\n"
    (100. *. Nano_faults.Noisy_sim.output_reliability sim)
