(* The paper's stated future work — sequential circuits — implemented as
   an extension: wrap a combinational core in registers, measure the
   *temporal* per-cycle switching activity (which the combinational
   temporal-independence model cannot see), and bound the energy of one
   clock cycle of a fault-tolerant version of the machine.

   Run with: dune exec examples/sequential_machine.exe *)

module Seq = Nano_seq.Seq_netlist
module Circuits = Nano_seq.Seq_circuits

let n = Nano_report.Report.Table.number

let () =
  (* A 16-bit accumulator: the adder datapath of the paper's Section 6,
     now clocked. *)
  let machine = Circuits.accumulator ~width:16 in
  let core = Seq.core machine in
  Printf.printf "machine: %s — core %d gates, depth %d, %d state bits\n"
    (Nano_netlist.Netlist.name core)
    (Nano_netlist.Netlist.size core)
    (Nano_netlist.Netlist.depth core)
    (Seq.state_bits machine);

  (* 1. Cycle-accurate sanity check: accumulate 1 for ten cycles. *)
  let one =
    List.init 16 (fun i -> (Printf.sprintf "a%d" i, i = 0))
  in
  let trace = Seq.simulate machine ~inputs:(List.init 10 (fun _ -> one)) in
  let value_at t =
    let out = List.nth trace t in
    List.fold_left
      (fun acc i ->
        if List.assoc (Printf.sprintf "acc%d" i) out then acc lor (1 lsl i)
        else acc)
      0
      (List.init 16 (fun i -> i))
  in
  Printf.printf "accumulating +1: cycle 3 holds %d, cycle 9 holds %d\n"
    (value_at 3) (value_at 9);

  (* 2. Temporal vs independence-model activity. *)
  let temporal = Seq.average_gate_temporal_activity ~cycles:4096 machine in
  let independent =
    (Nano_sim.Activity.monte_carlo ~vectors:4096 core)
      .Nano_sim.Activity.average_gate_activity
  in
  Printf.printf
    "\naverage gate activity: temporal (clocked) %s vs independence model %s\n"
    (n temporal) (n independent);
  Printf.printf
    "(state feedback correlates consecutive cycles; the bounds use the\n\
     measured temporal value, keeping the per-cycle energy bound honest)\n\n";

  (* 3. Per-cycle fault-tolerance bounds for the machine. *)
  let profile = Seq.profile ~cycles:4096 machine in
  Format.printf "profile: %a@." Nano_bounds.Profile.pp profile;
  let rows =
    List.map
      (fun epsilon ->
        let r = Nano_bounds.Benchmark_eval.evaluate_profile profile ~epsilon in
        let o = function Some v -> n v | None -> "infeasible" in
        [
          n epsilon;
          n r.Nano_bounds.Benchmark_eval.energy_ratio;
          o r.Nano_bounds.Benchmark_eval.delay_ratio;
          o r.Nano_bounds.Benchmark_eval.average_power_ratio;
        ])
      [ 0.001; 0.01; 0.1 ]
  in
  print_string
    (Nano_report.Report.Table.render
       ~header:[ "eps"; "E/E0 per cycle"; "D/D0"; "P/P0" ]
       ~rows);

  (* 4. Unrolling: the bridge back to the combinational theory. Three
     frames of the accumulator as one combinational circuit. *)
  let unrolled = Seq.unroll machine ~cycles:3 in
  Printf.printf
    "\nunrolled 3 frames: %d gates, depth %d — combinational, so every\n\
     theorem in nano_bounds applies to multi-cycle computations directly.\n"
    (Nano_netlist.Netlist.size unrolled)
    (Nano_netlist.Netlist.depth unrolled);

  (* 5. An LFSR shows the opposite activity regime: near-uniform state. *)
  let lfsr = Circuits.lfsr ~bits:16 ~taps:[ 15; 13; 12; 10 ] in
  let lfsr_temporal = Seq.average_gate_temporal_activity ~cycles:4096 lfsr in
  Printf.printf
    "\nlfsr16 average temporal gate activity: %s (pseudo-random state ≈ the\n\
     independence model's assumption, unlike the counter's correlated bits)\n"
    (n lfsr_temporal);

  (* 6. Why sequential fault tolerance is harder: errors latch. *)
  let t =
    Nano_seq.Noisy_seq.simulate ~epsilon:0.01 ~cycles:64 ~streams:256 machine
  in
  Printf.printf
    "\nfault injection at eps=1%%: state corruption %s after 4 cycles,\n\
     %s after 63 — a combinational circuit would stay at its per-vector\n\
     error rate (%s at cycle 0) forever. Redundancy for machines must\n\
     protect the state loop, not just each cycle's logic.\n"
    (n t.Nano_seq.Noisy_seq.state_error_per_cycle.(3))
    (n t.Nano_seq.Noisy_seq.state_error_per_cycle.(63))
    (n t.Nano_seq.Noisy_seq.output_error_per_cycle.(0))
