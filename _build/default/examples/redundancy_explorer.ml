(* Spending redundancy two classical ways — N-modular redundancy and von
   Neumann NAND multiplexing — and placing both against the paper's
   lower bound.

   The bounds deliberately assume no particular redundancy scheme; this
   example shows (a) what the schemes actually buy at a given gate error
   rate, (b) what they cost in gates (hence energy), and (c) that the
   theoretical minimum redundancy sits below both, as a lower bound
   must.

   Run with: dune exec examples/redundancy_explorer.exe *)

let n = Nano_report.Report.Table.number

let nmr_section () =
  print_endline "--- N-modular redundancy on a majority-tree workload ---";
  let epsilon = 0.005 in
  let base =
    Nano_synth.Script.rugged_lite (Nano_circuits.Trees.majority_tree ~inputs:9)
  in
  let rows =
    List.map
      (fun nmr ->
        let protected_netlist = Nano_redundancy.Nmr.make ~n:nmr base in
        let sim =
          Nano_faults.Noisy_sim.simulate ~vectors:65536 ~epsilon
            protected_netlist
        in
        let base_sim =
          Nano_faults.Noisy_sim.simulate ~vectors:65536 ~epsilon base
        in
        let module_error =
          base_sim.Nano_faults.Noisy_sim.any_output_error
        in
        let analytic =
          Nano_redundancy.Nmr.analytic_voted_error ~n:nmr ~module_error
            ~voter_epsilon:epsilon
        in
        [
          Printf.sprintf "NMR-%d" nmr;
          n (Nano_redundancy.Nmr.size_overhead ~n:nmr base);
          n analytic;
          n sim.Nano_faults.Noisy_sim.any_output_error;
        ])
      [ 3; 5; 7 ]
  in
  print_string
    (Nano_report.Report.Table.render
       ~header:
         [ "scheme"; "size ratio"; "analytic delta"; "measured delta" ]
       ~rows)

let multiplexing_section () =
  print_endline "--- Von Neumann NAND multiplexing ---";
  let epsilon = 0.01 in
  Printf.printf
    "stimulated fixed point at eps=%.2f: %.4f (fraction of bundle wires \
     carrying the right value after restoration)\n"
    epsilon
    (Nano_redundancy.Multiplexing.stimulated_fixed_point ~epsilon);
  let rows =
    List.map
      (fun (bundle, stages) ->
        let measured =
          Nano_redundancy.Multiplexing.measured_output_level ~trials:128
            ~epsilon ~bundle ~restorative_stages:stages ~x_level:0.95
            ~y_level:0.05 ()
        in
        [
          Printf.sprintf "N=%d U=%d" bundle stages;
          string_of_int
            (Nano_redundancy.Multiplexing.size ~bundle
               ~restorative_stages:stages);
          n measured.Nano_util.Stats.mean;
          n measured.Nano_util.Stats.stddev;
        ])
      [ (9, 0); (9, 1); (9, 2); (33, 1); (33, 2); (99, 2) ]
  in
  print_string
    (Nano_report.Report.Table.render
       ~header:[ "config"; "gates/NAND"; "output level"; "sd" ]
       ~rows)

let bound_section () =
  print_endline "--- Theorem 2's minimum redundancy for the same job ---";
  let epsilon = 0.01 in
  let rows =
    List.map
      (fun delta ->
        let params =
          {
            Nano_bounds.Redundancy_bound.epsilon;
            delta;
            fanin = 2;
            sensitivity = 9;
          }
        in
        [
          n delta;
          n (Nano_bounds.Redundancy_bound.extra_gates params);
          n
            (Nano_bounds.Redundancy_bound.redundancy_factor params
               ~error_free_size:13);
        ])
      [ 0.1; 0.01; 0.001 ]
  in
  print_string
    (Nano_report.Report.Table.render
       ~header:[ "delta"; "extra gates >="; "size ratio >=" ]
       ~rows);
  print_endline
    "\nNMR-3 costs 3.4x and multiplexing tens of x; the information-\n\
     theoretic floor above is far below both — the gap is the price of\n\
     committing to a specific redundancy scheme."

let () =
  nmr_section ();
  print_newline ();
  multiplexing_section ();
  print_newline ();
  bound_section ()
