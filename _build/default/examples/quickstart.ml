(* Quickstart: how much energy must a fault-tolerant version of my
   circuit pay?

   Build a circuit, map it onto the max-fanin-3 library, measure its
   profile (size, depth, activity, sensitivity), and evaluate the
   paper's lower bounds at a 1% gate-error rate with 99% required output
   resilience.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. A circuit: a 16-bit ripple-carry adder. *)
  let adder = Nano_circuits.Adders.ripple_carry ~width:16 in

  (* 2. Optimize and map it (the paper's SIS + generic-library step). *)
  let mapped = Nano_synth.Script.rugged_lite ~max_fanin:3 adder in

  (* 3. Measure the four scalars the bounds need. *)
  let profile = Nano_bounds.Profile.of_netlist mapped in
  Format.printf "profile: %a@." Nano_bounds.Profile.pp profile;

  (* 4. Lower bounds at eps = 1%, delta = 1%, 50%-leakage baseline. *)
  let scenario =
    Nano_bounds.Profile.to_scenario profile ~epsilon:0.01 ~delta:0.01
      ~leakage_share0:0.5
  in
  let bounds = Nano_bounds.Metrics.evaluate scenario in
  Printf.printf "size ratio        >= %.3f\n" bounds.Nano_bounds.Metrics.size_ratio;
  Printf.printf "energy ratio      >= %.3f\n"
    bounds.Nano_bounds.Metrics.energy_ratio;
  (match bounds.Nano_bounds.Metrics.delay_ratio with
  | Some d -> Printf.printf "delay ratio       >= %.3f\n" d
  | None -> print_endline "delay: reliable computation infeasible here");
  (match bounds.Nano_bounds.Metrics.energy_delay_ratio with
  | Some e -> Printf.printf "energy-delay      >= %.3f\n" e
  | None -> ());
  (match bounds.Nano_bounds.Metrics.average_power_ratio with
  | Some p -> Printf.printf "average power     >= %.3f\n" p
  | None -> ());

  (* 5. Sanity-check with fault injection: what does eps = 1% actually do
     to this unprotected circuit? *)
  let sim = Nano_faults.Noisy_sim.simulate ~epsilon:0.01 mapped in
  Printf.printf
    "unprotected circuit at eps=1%%: P(all outputs correct) = %.3f\n"
    (Nano_faults.Noisy_sim.output_reliability sim)
