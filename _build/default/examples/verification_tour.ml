(* A tour of the three combinational-equivalence engines shipped with
   the repo — exhaustive simulation, canonical ROBDDs, and CDCL SAT on a
   Tseitin miter — plus DIMACS export for cross-checking with external
   solvers. Every synthesis pass in nano_synth is validated by these
   engines in the test suite; this example shows them working on a
   deliberately planted bug.

   Run with: dune exec examples/verification_tour.exe *)

module B = Nano_netlist.Netlist.Builder

(* A 12-bit carry-select adder and the same adder with a planted bug:
   one full-adder cell's majority carry gate swapped for an AND. *)
let good () = Nano_circuits.Adders.ripple_carry ~width:12

let buggy () =
  let b = B.create ~name:"rca12_bug" () in
  let a = Array.init 12 (fun i -> B.input b (Printf.sprintf "a%d" i)) in
  let bv = Array.init 12 (fun i -> B.input b (Printf.sprintf "b%d" i)) in
  let cin = B.input b "cin" in
  let carry = ref cin in
  for i = 0 to 11 do
    let axb = B.xor2 b a.(i) bv.(i) in
    B.output b (Printf.sprintf "s%d" i) (B.xor2 b axb !carry);
    carry :=
      (if i = 7 then
         (* the bug: carry = a & b, dropping the cin term *)
         B.and2 b a.(i) bv.(i)
       else B.maj3 b a.(i) bv.(i) !carry)
  done;
  B.output b "cout" !carry;
  B.finish b

let () =
  let reference = good () in
  let suspect = buggy () in

  print_endline "-- 1. BDD backend (canonical forms) --";
  (match Nano_synth.Equiv.bdd reference suspect with
  | Some (Nano_synth.Equiv.Counterexample cex) ->
    let hot = List.filter snd cex in
    Printf.printf "  DIFFERENT; counterexample binds %d inputs (%d high): %s\n"
      (List.length cex) (List.length hot)
      (String.concat " " (List.map fst hot))
  | Some Nano_synth.Equiv.Equivalent -> print_endline "  unexpectedly equivalent!"
  | None -> print_endline "  BDD blow-up");

  print_endline "-- 2. SAT backend (CDCL on the Tseitin miter) --";
  (match Nano_sat.Cnf.equivalent reference suspect with
  | `Counterexample cex ->
    print_endline "  DIFFERENT; SAT counterexample validated:";
    let out_a = Nano_netlist.Netlist.eval reference cex in
    let out_b = Nano_netlist.Netlist.eval suspect cex in
    List.iter
      (fun (nm, v) ->
        let w = List.assoc nm out_b in
        if v <> w then Printf.printf "    output %s: %b vs %b\n" nm v w)
      out_a
  | `Equivalent -> print_endline "  unexpectedly equivalent!"
  | `Unknown -> print_endline "  budget exhausted");

  print_endline "-- 3. the fixed design passes all engines --";
  let fixed = good () in
  let verdicts =
    [
      ("bdd",
       match Nano_synth.Equiv.bdd reference fixed with
       | Some Nano_synth.Equiv.Equivalent -> "EQUIVALENT"
       | Some (Nano_synth.Equiv.Counterexample _) -> "different"
       | None -> "unknown");
      ("sat",
       match Nano_sat.Cnf.equivalent reference fixed with
       | `Equivalent -> "EQUIVALENT"
       | `Counterexample _ -> "different"
       | `Unknown -> "unknown");
      ("auto",
       match Nano_synth.Equiv.check reference fixed with
       | Nano_synth.Equiv.Equivalent -> "EQUIVALENT"
       | Nano_synth.Equiv.Counterexample _ -> "different");
    ]
  in
  List.iter (fun (k, v) -> Printf.printf "  %-5s %s\n" k v) verdicts;

  print_endline "-- 4. exporting the miter as DIMACS --";
  let encoding, m = Nano_sat.Cnf.miter reference suspect in
  let clauses = [ m ] :: encoding.Nano_sat.Cnf.clauses in
  let path = Filename.temp_file "nanobound_miter" ".cnf" in
  Nano_sat.Dimacs.write_file ~path ~nvars:encoding.Nano_sat.Cnf.nvars clauses;
  Printf.printf "  %d vars, %d clauses written to %s\n"
    encoding.Nano_sat.Cnf.nvars (List.length clauses) path;
  (* round-trip through the parser and re-solve *)
  match Nano_sat.Dimacs.parse_file path with
  | Ok (nvars, parsed) -> begin
    match Nano_sat.Sat.solve ~nvars parsed with
    | Nano_sat.Sat.Sat _ ->
      print_endline "  re-parsed and re-solved: SAT (bug confirmed)"
    | Nano_sat.Sat.Unsat -> print_endline "  re-solved: UNSAT?!"
    | Nano_sat.Sat.Unknown -> print_endline "  re-solved: unknown"
  end
  | Error e -> print_endline ("  parse error: " ^ e)
