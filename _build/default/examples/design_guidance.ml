(* The workflow the paper's introduction motivates: a synthesis tool
   asking the theory for guidance before committing to a fault-tolerant
   implementation. For a 16-bit carry-lookahead adder:

   1. How bad may the devices be if I can only afford 40% more energy?
   2. At my actual device quality, can voltage scaling hide the cost?
   3. Where inside the circuit should the redundancy go?

   Run with: dune exec examples/design_guidance.exe *)

let n = Nano_report.Report.Table.number

let () =
  let circuit =
    Nano_synth.Script.rugged_lite (Nano_circuits.Adders.carry_lookahead ~width:16)
  in
  let profile = Nano_bounds.Profile.of_netlist circuit in
  Format.printf "design: %a@.@." Nano_bounds.Profile.pp profile;
  let scenario =
    Nano_bounds.Profile.to_scenario profile ~epsilon:0.01 ~delta:0.01
      ~leakage_share0:0.5
  in

  (* 1. Budget question. *)
  print_endline "-- 1. device-quality budget --";
  List.iter
    (fun budget ->
      match
        Nano_bounds.Crossover.max_epsilon_for_energy_budget ~budget scenario
      with
      | Some epsilon ->
        Printf.printf
          "  energy budget %.1fx -> devices must fail with eps <= %s\n"
          budget (n epsilon)
      | None -> Printf.printf "  energy budget %.1fx -> unreachable\n" budget)
    [ 1.2; 1.4; 2.0 ];
  (match Nano_bounds.Crossover.power_crossover scenario with
  | Some epsilon ->
    Printf.printf
      "  beyond eps ~ %s the fault-tolerant design is the *lower-power* one\n"
      (n epsilon)
  | None -> ());
  print_newline ();

  (* 2. Voltage question. *)
  print_endline "-- 2. can Vdd scaling hide the cost? (eps = 1%) --";
  let tech = Nano_energy.Technology.nm90 in
  let nominal = Nano_bounds.Voltage_tradeoff.nominal ~tech scenario in
  Printf.printf "  nominal: %.2fx energy, %.2fx delay\n"
    nominal.Nano_bounds.Voltage_tradeoff.energy_ratio
    nominal.Nano_bounds.Voltage_tradeoff.delay_ratio;
  (match Nano_bounds.Voltage_tradeoff.iso_energy ~tech scenario with
  | Some op ->
    Printf.printf
      "  iso-energy: Vdd %.3f V hides the energy, but delay becomes %.2fx\n"
      op.Nano_bounds.Voltage_tradeoff.vdd
      op.Nano_bounds.Voltage_tradeoff.delay_ratio
  | None -> print_endline "  iso-energy: impossible (supply would dive below VT)");
  (match Nano_bounds.Voltage_tradeoff.iso_delay ~tech scenario with
  | Some op ->
    Printf.printf
      "  iso-delay: Vdd %.3f V restores speed at %.2fx energy\n"
      op.Nano_bounds.Voltage_tradeoff.vdd
      op.Nano_bounds.Voltage_tradeoff.energy_ratio
  | None -> print_endline "  iso-delay: impossible within the supply range");
  print_newline ();

  (* 3. Placement question. *)
  print_endline "-- 3. where should redundancy go? --";
  let crit = Nano_faults.Criticality.analyze ~vectors:4096 circuit in
  let ranked = Nano_faults.Criticality.ranked_gates circuit crit in
  let top = List.filteri (fun i _ -> i < 5) ranked in
  print_string
    (Nano_report.Report.Table.render ~header:[ "gate"; "kind"; "observability" ]
       ~rows:
         (List.map
            (fun id ->
              [
                string_of_int id;
                Nano_netlist.Gate.name
                  (Nano_netlist.Netlist.info circuit id).Nano_netlist.Netlist.kind;
                n crit.Nano_faults.Criticality.observability.(id);
              ])
            top));
  let timing = Nano_netlist.Timing.analyze circuit in
  Printf.printf
    "  timed critical path: %d nodes to output '%s' (arrival %.1f)\n"
    (List.length timing.Nano_netlist.Timing.critical_path)
    timing.Nano_netlist.Timing.critical_output
    timing.Nano_netlist.Timing.max_arrival;
  print_endline
    "  -> harden the most observable gates first (and prefer voters from a\n\
    \     more robust device class; equal-quality voters are futile — see\n\
    \     examples/redundancy_explorer.ml and the test suite's von Neumann\n\
    \     caveat)."
