(* The motivating workload of the paper's Section 6: computer-arithmetic
   circuits at several bitwidths. For ripple-carry adders of width 8, 16
   and 32 and array multipliers of width 4 and 8, sweep the device error
   rate and print the energy / delay / average-power lower bounds —
   including where reliable computation stops being possible at all
   (Theorem 4's infeasible region) and where the fault-tolerant design
   becomes *more* power-efficient than the error-free one because its
   latency explodes.

   Run with: dune exec examples/adder_tradeoff.exe *)

let circuits =
  [
    ("rca8", fun () -> Nano_circuits.Adders.ripple_carry ~width:8);
    ("rca16", fun () -> Nano_circuits.Adders.ripple_carry ~width:16);
    ("rca32", fun () -> Nano_circuits.Adders.ripple_carry ~width:32);
    ("mult4", fun () -> Nano_circuits.Multipliers.array_multiplier ~width:4);
    ("mult8", fun () -> Nano_circuits.Multipliers.array_multiplier ~width:8);
  ]

let epsilons = [ 0.0001; 0.001; 0.01; 0.03; 0.1 ]

let () =
  let rows =
    List.concat_map
      (fun (name, build) ->
        let mapped = Nano_synth.Script.rugged_lite (build ()) in
        let profile = Nano_bounds.Profile.of_netlist mapped in
        List.map
          (fun epsilon ->
            let row =
              Nano_bounds.Benchmark_eval.evaluate_profile profile ~epsilon
            in
            let n = Nano_report.Report.Table.number in
            let o = function
              | Some v -> Nano_report.Report.Table.number v
              | None -> "infeasible"
            in
            [
              name;
              n epsilon;
              n row.Nano_bounds.Benchmark_eval.energy_ratio;
              o row.Nano_bounds.Benchmark_eval.delay_ratio;
              o row.Nano_bounds.Benchmark_eval.average_power_ratio;
              o row.Nano_bounds.Benchmark_eval.energy_delay_ratio;
            ])
          epsilons)
      circuits
  in
  print_string
    (Nano_report.Report.Table.render
       ~header:[ "circuit"; "eps"; "E/E0"; "D/D0"; "P/P0"; "ED/ED0" ]
       ~rows);
  (* Where does the average-power crossover land? The paper notes that
     for larger error rates depth grows faster than size, so the
     fault-tolerant implementation ends up *lower power* (at terrible
     latency). Find the crossover for rca16. *)
  let mapped = Nano_synth.Script.rugged_lite (Nano_circuits.Adders.ripple_carry ~width:16) in
  let profile = Nano_bounds.Profile.of_netlist mapped in
  let crossover =
    List.find_opt
      (fun epsilon ->
        match
          (Nano_bounds.Benchmark_eval.evaluate_profile profile ~epsilon)
            .Nano_bounds.Benchmark_eval.average_power_ratio
        with
        | Some p -> p < 1.
        | None -> false)
      (Nano_util.Sweep.epsilon_grid ~lo:1e-4 ~hi:0.12 ~steps:100 ())
  in
  match crossover with
  | Some epsilon ->
    Printf.printf
      "\nrca16: average power of the fault-tolerant bound drops below the \
       error-free baseline at eps ~= %.4f\n"
      epsilon
  | None -> print_endline "\nrca16: no power crossover in the swept range"
