examples/adder_tradeoff.ml: List Nano_bounds Nano_circuits Nano_report Nano_synth Nano_util Printf
