examples/verification_tour.mli:
