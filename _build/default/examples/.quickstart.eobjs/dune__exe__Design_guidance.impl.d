examples/design_guidance.ml: Array Format List Nano_bounds Nano_circuits Nano_energy Nano_faults Nano_netlist Nano_report Nano_synth Printf
