examples/sequential_machine.ml: Array Format List Nano_bounds Nano_netlist Nano_report Nano_seq Nano_sim Printf
