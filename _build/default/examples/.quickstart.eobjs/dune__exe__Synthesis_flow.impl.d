examples/synthesis_flow.ml: Filename Format List Nano_blif Nano_circuits Nano_netlist Nano_synth Printf
