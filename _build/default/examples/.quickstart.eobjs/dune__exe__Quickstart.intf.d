examples/quickstart.mli:
