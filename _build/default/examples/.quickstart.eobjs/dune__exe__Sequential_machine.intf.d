examples/sequential_machine.mli:
