examples/verification_tour.ml: Array Filename List Nano_circuits Nano_netlist Nano_sat Nano_synth Printf String
