examples/quickstart.ml: Format Nano_bounds Nano_circuits Nano_faults Nano_synth Printf
