examples/fault_injection.ml: List Nano_bounds Nano_circuits Nano_faults Nano_netlist Nano_report Nano_sim Nano_synth Printf
