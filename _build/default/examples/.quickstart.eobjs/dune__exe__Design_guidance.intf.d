examples/design_guidance.mli:
