(* The EDA flow end-to-end on an external netlist: parse a BLIF model,
   optimize and map it with the rugged_lite script, verify the result is
   equivalent, print before/after statistics, and write the mapped
   design back out as BLIF (plus Graphviz for inspection).

   Run with: dune exec examples/synthesis_flow.exe *)

(* A small BLIF model: a 2-bit multiplier written as two-level covers,
   the way SIS benchmarks are distributed. *)
let blif_source =
  {|
# 2x2 unsigned multiplier, two-level form
.model mul2
.inputs a0 a1 b0 b1
.outputs p0 p1 p2 p3
.names a0 b0 p0
11 1
.names a0 a1 b0 b1 p1
1-01 1
-110 1
1101 1
0111 1
.names a0 a1 b0 b1 p2
-1-1 1
.names a0 a1 b0 b1 p3
1111 1
.end
|}

(* p2 above is deliberately sloppy (it ignores the carry structure): the
   real p2 of a 2x2 multiplier is a1&b1&(not(a0&b0))... we parse, then
   check the parsed model against a reference generator and report the
   mismatch like a verification flow would. *)

let () =
  match Nano_blif.Blif.parse_string blif_source with
  | Error e ->
    Format.printf "parse error: %a@." Nano_blif.Blif.pp_error e;
    exit 1
  | Ok parsed ->
    Printf.printf "parsed '%s': %d nodes, size %d, depth %d\n"
      (Nano_netlist.Netlist.name parsed)
      (Nano_netlist.Netlist.node_count parsed)
      (Nano_netlist.Netlist.size parsed)
      (Nano_netlist.Netlist.depth parsed);
    (* Optimize + map. *)
    let mapped = Nano_synth.Script.rugged_lite ~max_fanin:3 parsed in
    Printf.printf "after rugged_lite: size %d, depth %d, max fanin %d\n"
      (Nano_netlist.Netlist.size mapped)
      (Nano_netlist.Netlist.depth mapped)
      (Nano_netlist.Netlist.max_fanin mapped);
    (* The script must preserve the parsed function ... *)
    (match Nano_synth.Equiv.check parsed mapped with
    | Nano_synth.Equiv.Equivalent ->
      print_endline "equivalence parsed vs mapped: OK"
    | Nano_synth.Equiv.Counterexample cex ->
      print_endline "equivalence parsed vs mapped: FAILED at";
      List.iter (fun (n, v) -> Printf.printf "  %s=%b\n" n v) cex);
    (* ... and verification against an independent reference catches the
       bug planted in the source's p2 cover. *)
    let reference =
      let m = Nano_circuits.Multipliers.array_multiplier ~width:2 in
      m
    in
    (match Nano_synth.Equiv.check mapped reference with
    | Nano_synth.Equiv.Equivalent ->
      print_endline "verification vs reference multiplier: equivalent"
    | Nano_synth.Equiv.Counterexample cex ->
      print_endline
        "verification vs reference multiplier: MISMATCH (expected — the \
         BLIF source's p2 cover drops the carry):";
      List.iter (fun (n, v) -> Printf.printf "  %s=%b\n" n v) cex);
    (* Emit the mapped netlist. *)
    let out = Filename.temp_file "mul2_mapped" ".blif" in
    Nano_blif.Blif.write_file out mapped;
    Printf.printf "mapped netlist written to %s\n" out;
    (* Round-trip check: parse what we wrote and compare. *)
    (match Nano_blif.Blif.parse_file out with
    | Ok reparsed -> begin
      match Nano_synth.Equiv.check mapped reparsed with
      | Nano_synth.Equiv.Equivalent -> print_endline "BLIF round-trip: OK"
      | Nano_synth.Equiv.Counterexample _ ->
        print_endline "BLIF round-trip: MISMATCH"
    end
    | Error e -> Format.printf "round-trip parse error: %a@." Nano_blif.Blif.pp_error e)
