module Netlist = Nano_netlist.Netlist

let map_only ?(max_fanin = 3) netlist =
  let simplified = Strash.run netlist in
  let balanced = Balance.run simplified in
  let limited = Fanin_limit.run ~max_fanin balanced in
  Strash.run limited

let rugged_lite ?(max_fanin = 3) ?(collapse_threshold = 10) netlist =
  let simplified = Strash.run netlist in
  let inputs = List.length (Netlist.inputs simplified) in
  let best =
    if inputs <= collapse_threshold then begin
      (* Collapse, minimize, and rebuild both two-level and factored
         multi-level forms; keep whichever implementation is smallest
         (XOR-dominated circuits usually stay with the structural
         original). *)
      match Collapse.to_truth_tables ~max_inputs:collapse_threshold simplified with
      | None -> simplified
      | Some tables ->
        let covers =
          List.map
            (fun (name, tt) -> (name, Quine_mccluskey.minimize_table tt))
            tables
        in
        let input_names = Netlist.input_names simplified in
        let name = Netlist.name simplified in
        let two_level = Strash.run (Collapse.of_covers ~name ~input_names covers) in
        let factored =
          Strash.run (Factor.netlist_of_covers ~name ~input_names covers)
        in
        let smallest a b = if Netlist.size b < Netlist.size a then b else a in
        smallest (smallest simplified two_level) factored
    end
    else simplified
  in
  map_only ~max_fanin best

let nand_flow netlist = Strash.run (Nand_map.run netlist)
