(** Algebraic factoring of two-level covers into multi-level factored
    forms — the literal-division "quick factor" of the SIS family.

    A sum-of-products like [ab + ac + ad] costs 6 literals two-level but
    factors to [a(b + c + d)] with 4; on gate netlists that translates
    directly into fewer gates. Factoring repeatedly divides the cover by
    its most shared literal: [f = l·q + r]. *)

type expr =
  | Const of bool
  | Lit of { var : int; positive : bool }
  | And of expr list
  | Or of expr list

val quick_factor : arity:int -> Nano_logic.Cube.Cover.t -> expr
(** Factored form of the cover (over variables [0 .. arity-1]). The
    result evaluates identically to the cover on every assignment. *)

val eval : expr -> (int -> bool) -> bool
val literal_count : expr -> int
(** Leaves of kind [Lit] in the expression tree. *)

val depth : expr -> int
val to_string : expr -> string
(** Human-readable form, e.g. ["(x0 & (x1 | x2 | ~x3))"]. *)

val build :
  Nano_netlist.Netlist.Builder.t ->
  inputs:Nano_netlist.Netlist.node array ->
  expr ->
  Nano_netlist.Netlist.node
(** Instantiate the expression as gates; literal inverters are created
    per call site (share them by strashing afterwards). *)

val netlist_of_covers :
  name:string ->
  input_names:string list ->
  (string * Nano_logic.Cube.Cover.t) list ->
  Nano_netlist.Netlist.t
(** Factor every output and build one netlist (then worth a
    {!Strash.run} to share common subexpressions). *)
