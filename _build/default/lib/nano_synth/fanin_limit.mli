(** Decompose wide gates into trees whose fanin does not exceed a given
    bound — the "mapped using a generic library comprised of gates with a
    maximum fanin of three" step of the paper's Section 6 methodology. *)

val run : max_fanin:int -> Nano_netlist.Netlist.t -> Nano_netlist.Netlist.t
(** Rebuild the netlist with every gate's fanin at most [max_fanin].
    AND/OR/XOR (and their complements) become balanced trees with the
    negation pushed to the root gate. Requires [max_fanin >= 2]. Raises
    [Invalid_argument] for a majority gate wider than [max_fanin] (the
    library's voter is a primitive; widen it with
    [Nano_redundancy] voters instead). *)
