module Cube = Nano_logic.Cube
module B = Nano_netlist.Netlist.Builder
module Gate = Nano_netlist.Gate

type expr =
  | Const of bool
  | Lit of { var : int; positive : bool }
  | And of expr list
  | Or of expr list

(* ------------------------------------------------------------------ *)
(* Factoring.                                                           *)
(* ------------------------------------------------------------------ *)

let cube_literals ~arity cube =
  let lits = ref [] in
  for var = arity - 1 downto 0 do
    match Cube.literal cube var with
    | Cube.One -> lits := (var, true) :: !lits
    | Cube.Zero -> lits := (var, false) :: !lits
    | Cube.Dont_care -> ()
  done;
  !lits

let expr_of_cube ~arity cube =
  match cube_literals ~arity cube with
  | [] -> Const true
  | [ (var, positive) ] -> Lit { var; positive }
  | lits -> And (List.map (fun (var, positive) -> Lit { var; positive }) lits)

(* The literal occurring in the most cubes (at least two); None when no
   literal is shared. *)
let most_shared_literal ~arity cover =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun cube ->
      List.iter
        (fun lit ->
          let c = match Hashtbl.find_opt counts lit with Some c -> c | None -> 0 in
          Hashtbl.replace counts lit (c + 1))
        (cube_literals ~arity cube))
    cover;
  Hashtbl.fold
    (fun lit count best ->
      match best with
      | Some (_, best_count) when best_count >= count -> best
      | _ -> if count >= 2 then Some (lit, count) else best)
    counts None

(* Remove literal [var/positive] from a cube (making it Dont_care). *)
let cube_without ~arity cube var =
  Cube.make
    (Array.init arity (fun i ->
         if i = var then Cube.Dont_care else Cube.literal cube i))

let rec quick_factor ~arity cover =
  match cover with
  | [] -> Const false
  | [ cube ] -> expr_of_cube ~arity cube
  | _ -> begin
    (* A universal cube makes the whole cover a tautology-by-cube. *)
    if List.exists (fun c -> Cube.literal_count c = 0) cover then Const true
    else begin
      match most_shared_literal ~arity cover with
      | None -> Or (List.map (expr_of_cube ~arity) cover)
      | Some (((var, positive) as lit), _) ->
        let has_lit cube = List.mem lit (cube_literals ~arity cube) in
        let quotient =
          List.filter_map
            (fun cube ->
              if has_lit cube then Some (cube_without ~arity cube var)
              else None)
            cover
        in
        let remainder = List.filter (fun c -> not (has_lit c)) cover in
        let factored_q = quick_factor ~arity quotient in
        let head =
          match factored_q with
          | Const true -> Lit { var; positive }
          | Const false -> Const false
          | q -> And [ Lit { var; positive }; q ]
        in
        if remainder = [] then head
        else begin
          match quick_factor ~arity remainder with
          | Const false -> head
          | Const true -> Const true
          | r -> begin
            match head, r with
            | Or a, Or b -> Or (a @ b)
            | Or a, r -> Or (a @ [ r ])
            | head, Or b -> Or (head :: b)
            | head, r -> Or [ head; r ]
          end
        end
    end
  end

(* ------------------------------------------------------------------ *)
(* Observation.                                                         *)
(* ------------------------------------------------------------------ *)

let rec eval expr assignment =
  match expr with
  | Const v -> v
  | Lit { var; positive } -> if positive then assignment var else not (assignment var)
  | And es -> List.for_all (fun e -> eval e assignment) es
  | Or es -> List.exists (fun e -> eval e assignment) es

let rec literal_count = function
  | Const _ -> 0
  | Lit _ -> 1
  | And es | Or es -> List.fold_left (fun acc e -> acc + literal_count e) 0 es

let rec depth = function
  | Const _ | Lit _ -> 0
  | And es | Or es ->
    1 + List.fold_left (fun acc e -> max acc (depth e)) 0 es

let rec to_string = function
  | Const true -> "1"
  | Const false -> "0"
  | Lit { var; positive } ->
    Printf.sprintf "%sx%d" (if positive then "" else "~") var
  | And es -> "(" ^ String.concat " & " (List.map to_string es) ^ ")"
  | Or es -> "(" ^ String.concat " | " (List.map to_string es) ^ ")"

(* ------------------------------------------------------------------ *)
(* Netlist construction.                                                *)
(* ------------------------------------------------------------------ *)

let rec build b ~inputs expr =
  match expr with
  | Const v -> B.const b v
  | Lit { var; positive } ->
    if positive then inputs.(var) else B.not_ b inputs.(var)
  | And es -> B.reduce b Gate.And (List.map (build b ~inputs) es)
  | Or es -> B.reduce b Gate.Or (List.map (build b ~inputs) es)

let netlist_of_covers ~name ~input_names covers =
  let arity = List.length input_names in
  let b = B.create ~name () in
  let inputs = Array.of_list (List.map (B.input b) input_names) in
  List.iter
    (fun (out_name, cover) ->
      let expr = quick_factor ~arity cover in
      B.output b out_name (build b ~inputs expr))
    covers;
  B.finish b
