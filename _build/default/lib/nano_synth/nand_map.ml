module Netlist = Nano_netlist.Netlist
module B = Nano_netlist.Netlist.Builder
module Gate = Nano_netlist.Gate

type ctx = { b : B.t; neg : (Netlist.node, Netlist.node) Hashtbl.t }

let mk_not ctx x =
  match Hashtbl.find_opt ctx.neg x with
  | Some y -> y
  | None ->
    let y = B.not_ ctx.b x in
    Hashtbl.replace ctx.neg x y;
    Hashtbl.replace ctx.neg y x;
    y

let nand2 ctx x y = B.nand2 ctx.b x y
let and2 ctx x y = mk_not ctx (nand2 ctx x y)
let or2 ctx x y = nand2 ctx (mk_not ctx x) (mk_not ctx y)

(* Classic 4-NAND exclusive-or cell. *)
let xor2 ctx a b =
  let m = nand2 ctx a b in
  nand2 ctx (nand2 ctx a m) (nand2 ctx b m)

let rec fold_balanced op = function
  | [] -> invalid_arg "Nand_map: empty fanin"
  | [ x ] -> x
  | xs ->
    let rec pairs = function
      | [] -> []
      | [ x ] -> [ x ]
      | x :: y :: rest -> op x y :: pairs rest
    in
    fold_balanced op (pairs xs)

let map_gate ctx kind fanins =
  match kind, fanins with
  | Gate.Input, _ -> invalid_arg "Nand_map: Input"
  | Gate.Const v, _ -> B.const ctx.b v
  | Gate.Buf, [ x ] -> x
  | Gate.Not, [ x ] -> mk_not ctx x
  | Gate.And, xs -> fold_balanced (and2 ctx) xs
  | Gate.Nand, xs -> mk_not ctx (fold_balanced (and2 ctx) xs)
  | Gate.Or, xs -> fold_balanced (or2 ctx) xs
  | Gate.Nor, xs -> mk_not ctx (fold_balanced (or2 ctx) xs)
  | Gate.Xor, xs -> fold_balanced (xor2 ctx) xs
  | Gate.Xnor, xs -> mk_not ctx (fold_balanced (xor2 ctx) xs)
  | Gate.Majority, [ x; y; z ] ->
    (* maj(x,y,z) = NAND(NAND(x,y), NAND(y,z), NAND(x,z)) folded into
       2-input NANDs: OR of the three pairwise ANDs. *)
    let xy = and2 ctx x y in
    let yz = and2 ctx y z in
    let xz = and2 ctx x z in
    or2 ctx (or2 ctx xy yz) xz
  | Gate.Majority, _ ->
    invalid_arg "Nand_map: majority gates wider than 3 are not supported"
  | (Gate.Buf | Gate.Not), _ -> invalid_arg "Nand_map: bad arity"

let run netlist =
  let b = B.create ~name:(Netlist.name netlist ^ "_nand") () in
  let ctx = { b; neg = Hashtbl.create 64 } in
  let map = Array.make (Netlist.node_count netlist) (-1) in
  List.iter
    (fun id ->
      let name =
        match (Netlist.info netlist id).Netlist.name with
        | Some n -> n
        | None -> Printf.sprintf "_in%d" id
      in
      map.(id) <- B.input b name)
    (Netlist.inputs netlist);
  Netlist.iter netlist (fun id info ->
      match info.Netlist.kind with
      | Gate.Input -> ()
      | kind ->
        let fanins =
          Array.to_list (Array.map (fun f -> map.(f)) info.Netlist.fanins)
        in
        map.(id) <- map_gate ctx kind fanins);
  List.iter
    (fun (name, node) -> B.output b name map.(node))
    (Netlist.outputs netlist);
  B.finish b
