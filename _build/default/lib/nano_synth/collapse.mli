(** Collapse small netlists to truth tables and rebuild from two-level
    covers; together with {!Quine_mccluskey} this forms the
    collapse-minimize-rebuild pass of [Script.rugged_lite]. *)

val to_truth_tables :
  ?max_inputs:int ->
  Nano_netlist.Netlist.t ->
  (string * Nano_logic.Truth_table.t) list option
(** One truth table per primary output (over the primary inputs in
    declaration order). [None] when the netlist has more than
    [max_inputs] (default 14) inputs. *)

val of_covers :
  name:string ->
  input_names:string list ->
  (string * Nano_logic.Cube.Cover.t) list ->
  Nano_netlist.Netlist.t
(** Build an AND/OR/NOT netlist from named two-level covers. Literal
    inverters are shared across outputs; identical product terms are
    shared too. Every cover's cube arity must equal the number of input
    names. *)

val resynthesize :
  ?max_inputs:int -> Nano_netlist.Netlist.t -> Nano_netlist.Netlist.t option
(** Collapse, minimize each output with Quine–McCluskey, rebuild.
    [None] when the circuit is too wide to collapse. *)
