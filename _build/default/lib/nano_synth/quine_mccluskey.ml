module Cube = Nano_logic.Cube

module Cube_set = Set.Make (struct
  type t = Cube.t

  let compare = Cube.compare
end)

(* Iteratively merge distance-1 cube pairs; cubes that never merge are
   prime. *)
let prime_implicants ~arity ~on_set ~dc_set =
  let initial =
    List.sort_uniq compare (on_set @ dc_set)
    |> List.map (Cube.of_minterm ~arity)
  in
  let rec rounds current primes =
    if current = [] then primes
    else begin
      let arr = Array.of_list current in
      let n = Array.length arr in
      let merged_flag = Array.make n false in
      let next = ref Cube_set.empty in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          match Cube.merge_distance1 arr.(i) arr.(j) with
          | Some m ->
            merged_flag.(i) <- true;
            merged_flag.(j) <- true;
            next := Cube_set.add m !next
          | None -> ()
        done
      done;
      let new_primes = ref primes in
      Array.iteri
        (fun i c ->
          if not merged_flag.(i) then new_primes := Cube_set.add c !new_primes)
        arr;
      rounds (Cube_set.elements !next) !new_primes
    end
  in
  Cube_set.elements (rounds initial Cube_set.empty)

let minimize ~arity ~on_set ~dc_set =
  match on_set with
  | [] -> []
  | _ ->
    let primes = Array.of_list (prime_implicants ~arity ~on_set ~dc_set) in
    let on = Array.of_list (List.sort_uniq compare on_set) in
    let n_on = Array.length on in
    let n_primes = Array.length primes in
    (* covers.(p) = indices of ON minterms covered by prime p. *)
    let covers =
      Array.init n_primes (fun p ->
          let ms = ref [] in
          for m = n_on - 1 downto 0 do
            if Cube.covers primes.(p) on.(m) then ms := m :: !ms
          done;
          !ms)
    in
    let chosen = ref [] in
    let covered = Array.make n_on false in
    let choose p =
      chosen := primes.(p) :: !chosen;
      List.iter (fun m -> covered.(m) <- true) covers.(p)
    in
    (* Essential primes: minterms covered by exactly one prime. *)
    for m = 0 to n_on - 1 do
      let holders = ref [] in
      for p = 0 to n_primes - 1 do
        if List.mem m covers.(p) then holders := p :: !holders
      done;
      match !holders with
      | [ only ] when not covered.(m) -> choose only
      | _ -> ()
    done;
    (* Greedy completion: repeatedly take the prime covering the most
       uncovered minterms (ties broken toward fewer literals). *)
    let uncovered_count p =
      List.fold_left
        (fun acc m -> if covered.(m) then acc else acc + 1)
        0 covers.(p)
    in
    let rec complete () =
      if Array.exists (fun c -> not c) covered then begin
        let best = ref (-1) in
        let best_gain = ref 0 in
        let best_cost = ref max_int in
        for p = 0 to n_primes - 1 do
          let gain = uncovered_count p in
          let cost = Cube.literal_count primes.(p) in
          if gain > !best_gain || (gain = !best_gain && gain > 0 && cost < !best_cost)
          then begin
            best := p;
            best_gain := gain;
            best_cost := cost
          end
        done;
        assert (!best >= 0);
        choose !best;
        complete ()
      end
    in
    complete ();
    List.rev !chosen

let minimize_table tt =
  minimize
    ~arity:(Nano_logic.Truth_table.arity tt)
    ~on_set:(Nano_logic.Truth_table.minterms tt)
    ~dc_set:[]

let cover_cost cover =
  (Cube.Cover.cube_count cover, Cube.Cover.literal_count cover)
