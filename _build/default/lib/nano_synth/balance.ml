module Netlist = Nano_netlist.Netlist
module B = Nano_netlist.Netlist.Builder
module Gate = Nano_netlist.Gate

let associative = function
  | Gate.And | Gate.Or | Gate.Xor -> true
  | Gate.Input | Gate.Const _ | Gate.Buf | Gate.Not | Gate.Nand | Gate.Nor
  | Gate.Xnor | Gate.Majority -> false

(* Remove the operand with the smallest level. Operand lists are tiny
   (chain widths), so linear selection is fine. *)
let take_min_level operands =
  match operands with
  | [] -> invalid_arg "Balance.take_min_level: empty"
  | first :: rest ->
    let best =
      List.fold_left
        (fun (bn, bl) (n, l) -> if l < bl then (n, l) else (bn, bl))
        first rest
    in
    let removed = ref false in
    let remaining =
      List.filter
        (fun op ->
          if (not !removed) && op = best then begin
            removed := true;
            false
          end
          else true)
        operands
    in
    (best, remaining)

let run netlist =
  let b = B.create ~name:(Netlist.name netlist) () in
  let fanout = Netlist.fanout_counts netlist in
  (* Treat output pins as extra fanout so chains feeding outputs stay
     observable roots. *)
  List.iter
    (fun (_, node) -> fanout.(node) <- fanout.(node) + 1)
    (Netlist.outputs netlist);
  let n = Netlist.node_count netlist in
  let map = Array.make n (-1) in
  (* Logic level of each node in the NEW builder. *)
  let levels : (Netlist.node, int) Hashtbl.t = Hashtbl.create 64 in
  let level_of node =
    match Hashtbl.find_opt levels node with Some l -> l | None -> 0
  in
  List.iter
    (fun id ->
      let name =
        match (Netlist.info netlist id).Netlist.name with
        | Some nm -> nm
        | None -> Printf.sprintf "_in%d" id
      in
      map.(id) <- B.input b name)
    (Netlist.inputs netlist);
  (* Flattened operands of a same-kind chain rooted at [id]:
     single-fanout same-kind fanins are inlined recursively; everything
     else contributes its already-built node. Also reports the widest
     gate arity seen in the chain, which bounds the rebuilt tree's
     fanin (rebuilding 3-input gates as binary trees could deepen the
     circuit). *)
  let rec operands_of kind id (acc, widest) =
    let info = Netlist.info netlist id in
    if info.Netlist.kind = kind && fanout.(id) = 1 then
      Array.fold_left
        (fun acc f -> operands_of kind f acc)
        (acc, max widest (Array.length info.Netlist.fanins))
        info.Netlist.fanins
    else (map.(id) :: acc, widest)
  in
  (* Merge the [r] earliest-arriving operands into one gate. *)
  let merge kind r ops =
    let picked = ref [] in
    let rest = ref ops in
    for _ = 1 to r do
      let best, remaining = take_min_level !rest in
      picked := best :: !picked;
      rest := remaining
    done;
    let nodes = List.map fst !picked in
    let combined = B.add b kind nodes in
    let l = 1 + List.fold_left (fun acc (_, l) -> max acc l) 0 !picked in
    Hashtbl.replace levels combined l;
    (combined, l) :: !rest
  in
  (* k-ary Huffman by arrival level; the first merge takes the padding
     remainder so every later merge is exactly k-wide (the classical
     optimal grouping). *)
  let balance kind ~k ops =
    match ops with
    | [] -> invalid_arg "Balance: empty operand list"
    | [ (node, _) ] -> node
    | _ ->
      let n = List.length ops in
      let first =
        if k <= 2 then 2
        else begin
          let m = (n - 1) mod (k - 1) in
          if m = 0 then k else m + 1
        end
      in
      let rec go ops =
        match ops with
        | [ (node, _) ] -> node
        | _ -> go (merge kind k ops)
      in
      go (merge kind (max 2 first) ops)
  in
  Netlist.iter netlist (fun id info ->
      match info.Netlist.kind with
      | Gate.Input -> ()
      | kind when associative kind ->
        let ops, widest =
          Array.fold_left
            (fun acc f -> operands_of kind f acc)
            ([], Array.length info.Netlist.fanins)
            info.Netlist.fanins
        in
        let ops = List.map (fun node -> (node, level_of node)) ops in
        map.(id) <- balance kind ~k:widest ops
      | kind ->
        let fanins =
          Array.to_list (Array.map (fun f -> map.(f)) info.Netlist.fanins)
        in
        let node = B.add b kind fanins in
        let l =
          1 + List.fold_left (fun acc f -> max acc (level_of f)) 0 fanins
        in
        Hashtbl.replace levels node l;
        map.(id) <- node);
  List.iter
    (fun (name, node) -> B.output b name map.(node))
    (Netlist.outputs netlist);
  (* Drop the chain gates that were inlined away. *)
  Strash.sweep (B.finish b)
