(** Two-level minimization by the Quine–McCluskey procedure with a
    greedy covering step — the exact two-level engine behind the
    [rugged_lite] collapse/resynthesis pass (our stand-in for SIS's
    script.rugged two-level cleanup). Practical up to roughly 12
    variables. *)

val prime_implicants :
  arity:int -> on_set:int list -> dc_set:int list -> Nano_logic.Cube.t list
(** All prime implicants of the ON-set given don't-cares (minterms as
    assignment indices). *)

val minimize :
  arity:int -> on_set:int list -> dc_set:int list -> Nano_logic.Cube.Cover.t
(** Minimal (essential primes + greedy completion) cover of the ON-set.
    The result covers every ON minterm, covers no OFF minterm, and
    consists of prime implicants only. *)

val minimize_table : Nano_logic.Truth_table.t -> Nano_logic.Cube.Cover.t
(** Convenience wrapper with an empty don't-care set. *)

val cover_cost : Nano_logic.Cube.Cover.t -> int * int
(** [(cubes, literals)] — the classical two-level cost. *)
