(** Heuristic two-level minimization in the Espresso style:
    EXPAND → IRREDUNDANT → REDUCE iterated to a fixpoint.

    Exact Quine–McCluskey ({!Quine_mccluskey}) explodes past ~10
    variables because it enumerates all prime implicants; the Espresso
    loop only ever manipulates the current cover and checks cube
    containment against the OFF-set, which keeps it practical to 16+
    variables. Results are correct covers made of prime implicants, but
    minimality is heuristic. *)

val minimize :
  arity:int -> on_set:int list -> dc_set:int list -> Nano_logic.Cube.Cover.t
(** Minimize from the minterm lists (assignment indices as in
    {!Nano_logic.Truth_table}). Requires [arity <= 20]. The result
    covers every ON minterm and no OFF minterm. *)

val minimize_table : Nano_logic.Truth_table.t -> Nano_logic.Cube.Cover.t

val minimize_cover :
  arity:int -> on_cover:Nano_logic.Cube.Cover.t -> dc_set:int list ->
  Nano_logic.Cube.Cover.t
(** Start the loop from an existing cover instead of minterms — the
    standard way to re-minimize after other transformations. *)

val cover_cost : Nano_logic.Cube.Cover.t -> int * int
(** [(cubes, literals)], as {!Quine_mccluskey.cover_cost}. *)
