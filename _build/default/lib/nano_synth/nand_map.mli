(** Technology mapping onto a NAND/inverter library.

    Rewrites every gate as a network of 2-input NANDs plus inverters —
    the classical expansion that produced c1355 from c499 in the original
    ISCAS suite. The result computes the same functions with gate kinds
    restricted to [Nand] (arity 2), [Not], [Buf] and constants. *)

val run : Nano_netlist.Netlist.t -> Nano_netlist.Netlist.t
(** Raises [Invalid_argument] for majority gates wider than 3. *)
