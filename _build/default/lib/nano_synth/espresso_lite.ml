module Cube = Nano_logic.Cube

(* ------------------------------------------------------------------ *)
(* Helpers over minterm lists.                                          *)
(* ------------------------------------------------------------------ *)

(* Smallest cube containing all given minterms. *)
let supercube ~arity minterms =
  match minterms with
  | [] -> invalid_arg "Espresso_lite.supercube: empty"
  | first :: rest ->
    Cube.make
      (Array.init arity (fun var ->
           let bit m = (m lsr var) land 1 = 1 in
           let v = bit first in
           if List.for_all (fun m -> bit m = v) rest then
             if v then Cube.One else Cube.Zero
           else Cube.Dont_care))

let intersects_off off cube =
  Array.exists (fun m -> Cube.covers cube m) off

(* ------------------------------------------------------------------ *)
(* EXPAND: drop literals while the cube stays off the OFF-set.          *)
(* ------------------------------------------------------------------ *)

let expand_cube ~arity off cube =
  let current = ref cube in
  let changed = ref true in
  while !changed do
    changed := false;
    for var = 0 to arity - 1 do
      match Cube.literal !current var with
      | Cube.Dont_care -> ()
      | Cube.Zero | Cube.One ->
        let candidate =
          Cube.make
            (Array.init arity (fun i ->
                 if i = var then Cube.Dont_care else Cube.literal !current i))
        in
        if not (intersects_off off candidate) then begin
          current := candidate;
          changed := true
        end
    done
  done;
  !current

(* ------------------------------------------------------------------ *)
(* Coverage bookkeeping.                                                *)
(* ------------------------------------------------------------------ *)

(* For each ON minterm, how many cubes of [cover] contain it. *)
let coverage_counts on cover =
  let counts = Hashtbl.create (Array.length on) in
  Array.iter (fun m -> Hashtbl.replace counts m 0) on;
  List.iter
    (fun cube ->
      Array.iter
        (fun m ->
          if Cube.covers cube m then
            Hashtbl.replace counts m (Hashtbl.find counts m + 1))
        on)
    cover;
  counts

let irredundant on cover =
  (* Greedily drop cubes whose ON minterms are all covered elsewhere;
     process the most expensive cubes first so cheap ones survive. *)
  let counts = coverage_counts on cover in
  let order =
    List.sort
      (fun a b -> compare (Cube.literal_count a) (Cube.literal_count b))
      cover
    |> List.rev
  in
  let kept = ref [] in
  List.iter
    (fun cube ->
      let removable =
        Array.for_all
          (fun m -> (not (Cube.covers cube m)) || Hashtbl.find counts m >= 2)
          on
      in
      if removable then
        Array.iter
          (fun m ->
            if Cube.covers cube m then
              Hashtbl.replace counts m (Hashtbl.find counts m - 1))
          on
      else kept := cube :: !kept)
    order;
  List.rev !kept

(* REDUCE must be sequential: each cube shrinks to the supercube of the
   ON minterms that are covered only by it *under the current,
   partially-reduced cover* — shrinking in parallel against stale
   coverage counts can strand a minterm shared by two cubes. The
   invariant maintained here is that every ON minterm stays covered. *)
let reduce ~arity on cover =
  let counts = coverage_counts on cover in
  let reduced = ref [] in
  List.iter
    (fun cube ->
      let unique =
        Array.to_list on
        |> List.filter (fun m -> Cube.covers cube m && Hashtbl.find counts m = 1)
      in
      let replacement =
        match unique with
        | [] -> None (* fully redundant under the current cover: drop *)
        | ms -> Some (supercube ~arity ms)
      in
      (* update the live counts for the minterms this cube released *)
      Array.iter
        (fun m ->
          if Cube.covers cube m then begin
            let still =
              match replacement with
              | Some c -> Cube.covers c m
              | None -> false
            in
            if not still then
              Hashtbl.replace counts m (Hashtbl.find counts m - 1)
          end)
        on;
      match replacement with
      | Some c -> reduced := c :: !reduced
      | None -> ())
    cover;
  List.rev !reduced

(* ------------------------------------------------------------------ *)
(* The loop.                                                            *)
(* ------------------------------------------------------------------ *)

let cover_cost cover =
  (Cube.Cover.cube_count cover, Cube.Cover.literal_count cover)

let better (c1, l1) (c2, l2) = c1 < c2 || (c1 = c2 && l1 < l2)

let minimize_from ~arity ~on ~off initial =
  let expand_all cover = List.map (expand_cube ~arity off) cover in
  let dedupe cover = List.sort_uniq Cube.compare cover in
  let pass cover = irredundant on (dedupe (expand_all cover)) in
  let best = ref (pass initial) in
  let best_cost = ref (cover_cost !best) in
  let continue_ = ref true in
  let iterations = ref 0 in
  while !continue_ && !iterations < 5 do
    incr iterations;
    let reduced = reduce ~arity on !best in
    let candidate = pass reduced in
    let cost = cover_cost candidate in
    if better cost !best_cost then begin
      best := candidate;
      best_cost := cost
    end
    else continue_ := false
  done;
  !best

let minimize ~arity ~on_set ~dc_set =
  if arity > 20 then invalid_arg "Espresso_lite.minimize: arity <= 20";
  match on_set with
  | [] -> []
  | _ ->
    let on = Array.of_list (List.sort_uniq compare on_set) in
    let allowed = Hashtbl.create 64 in
    List.iter (fun m -> Hashtbl.replace allowed m ()) on_set;
    List.iter (fun m -> Hashtbl.replace allowed m ()) dc_set;
    let off =
      Array.of_list
        (List.filter
           (fun m -> not (Hashtbl.mem allowed m))
           (List.init (1 lsl arity) (fun i -> i)))
    in
    let initial = List.map (Cube.of_minterm ~arity) (Array.to_list on) in
    minimize_from ~arity ~on ~off initial

let minimize_table tt =
  minimize
    ~arity:(Nano_logic.Truth_table.arity tt)
    ~on_set:(Nano_logic.Truth_table.minterms tt)
    ~dc_set:[]

let minimize_cover ~arity ~on_cover ~dc_set =
  if arity > 20 then invalid_arg "Espresso_lite.minimize_cover: arity <= 20";
  let on_set =
    List.filter
      (fun m -> Cube.Cover.eval on_cover m)
      (List.init (1 lsl arity) (fun i -> i))
  in
  minimize ~arity ~on_set ~dc_set
