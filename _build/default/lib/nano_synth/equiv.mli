(** Combinational equivalence checking between netlists with identical
    interfaces (same input names, same output names; order may differ).
    Used to validate every synthesis transformation.

    A fourth, SAT-based decision procedure lives in [Nano_sat.Cnf]
    (miter + DPLL); it is kept out of {!check}'s automatic ladder
    because plain DPLL struggles on multiplier miters where the BDD and
    random backends do fine. *)

type outcome =
  | Equivalent
  | Counterexample of (string * bool) list
      (** An input assignment on which some common output differs. *)

val exhaustive :
  ?max_inputs:int -> Nano_netlist.Netlist.t -> Nano_netlist.Netlist.t ->
  outcome option
(** Exhaustive check; [None] when the interface exceeds [max_inputs]
    (default 16) inputs. Raises [Invalid_argument] when the interfaces
    don't match. *)

val random :
  ?seed:int -> ?vectors:int -> Nano_netlist.Netlist.t ->
  Nano_netlist.Netlist.t -> outcome
(** Random-vector check ([vectors] defaults to 4096); [Equivalent] here
    means "no counterexample found". *)

val bdd :
  ?max_nodes:int -> Nano_netlist.Netlist.t -> Nano_netlist.Netlist.t ->
  outcome option
(** Formal check: build ROBDDs of both circuits over a shared variable
    order (inputs matched by name) and compare canonical forms per
    output; a mismatch yields a concrete counterexample from the XOR's
    satisfying path. [None] when the shared manager exceeds [max_nodes]
    (default 200_000) BDD nodes — the space blow-up guard. *)

val check :
  ?seed:int -> ?vectors:int -> Nano_netlist.Netlist.t ->
  Nano_netlist.Netlist.t -> outcome
(** {!exhaustive} when the interface is small, then {!bdd}, falling back
    to {!random} if the BDD blows up. *)
