lib/nano_synth/equiv.ml: Array Hashtbl List Nano_bdd Nano_netlist Nano_util String
