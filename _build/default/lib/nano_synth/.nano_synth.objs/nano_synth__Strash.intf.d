lib/nano_synth/strash.mli: Nano_netlist
