lib/nano_synth/quine_mccluskey.mli: Nano_logic
