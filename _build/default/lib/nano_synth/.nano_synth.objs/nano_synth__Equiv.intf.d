lib/nano_synth/equiv.mli: Nano_netlist
