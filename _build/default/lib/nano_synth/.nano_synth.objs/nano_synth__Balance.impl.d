lib/nano_synth/balance.ml: Array Hashtbl List Nano_netlist Printf Strash
