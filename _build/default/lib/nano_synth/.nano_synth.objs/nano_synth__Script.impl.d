lib/nano_synth/script.ml: Balance Collapse Factor Fanin_limit List Nand_map Nano_netlist Quine_mccluskey Strash
