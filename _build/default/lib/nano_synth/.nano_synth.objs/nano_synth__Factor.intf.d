lib/nano_synth/factor.mli: Nano_logic Nano_netlist
