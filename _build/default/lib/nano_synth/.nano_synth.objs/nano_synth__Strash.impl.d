lib/nano_synth/strash.ml: Array Hashtbl List Nano_netlist Option Printf
