lib/nano_synth/nand_map.mli: Nano_netlist
