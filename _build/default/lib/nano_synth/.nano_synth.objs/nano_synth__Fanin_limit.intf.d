lib/nano_synth/fanin_limit.mli: Nano_netlist
