lib/nano_synth/script.mli: Nano_netlist
