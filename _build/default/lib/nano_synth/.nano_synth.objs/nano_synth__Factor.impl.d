lib/nano_synth/factor.ml: Array Hashtbl List Nano_logic Nano_netlist Printf String
