lib/nano_synth/quine_mccluskey.ml: Array List Nano_logic Set
