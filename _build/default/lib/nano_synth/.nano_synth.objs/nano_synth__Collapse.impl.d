lib/nano_synth/collapse.ml: Array Hashtbl List Nano_logic Nano_netlist Nano_sim Nano_util Quine_mccluskey
