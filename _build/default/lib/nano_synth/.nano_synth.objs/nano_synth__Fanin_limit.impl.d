lib/nano_synth/fanin_limit.ml: Array List Nano_netlist Printf
