lib/nano_synth/collapse.mli: Nano_logic Nano_netlist
