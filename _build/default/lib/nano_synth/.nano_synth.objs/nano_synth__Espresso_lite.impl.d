lib/nano_synth/espresso_lite.ml: Array Hashtbl List Nano_logic
