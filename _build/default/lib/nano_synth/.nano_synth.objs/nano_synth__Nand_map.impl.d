lib/nano_synth/nand_map.ml: Array Hashtbl List Nano_netlist Printf
