lib/nano_synth/balance.mli: Nano_netlist
