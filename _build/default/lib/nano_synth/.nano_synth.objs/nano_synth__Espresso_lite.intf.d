lib/nano_synth/espresso_lite.mli: Nano_logic
