module Netlist = Nano_netlist.Netlist
module B = Nano_netlist.Netlist.Builder
module Gate = Nano_netlist.Gate
module Cube = Nano_logic.Cube
module Truth_table = Nano_logic.Truth_table

let to_truth_tables ?(max_inputs = 14) netlist =
  let inputs = Netlist.inputs netlist in
  let n = List.length inputs in
  if n > max_inputs then None
  else begin
    let total = 1 lsl n in
    let out_nodes = Netlist.outputs netlist in
    let tables =
      List.map
        (fun (name, _) -> (name, Nano_util.Bits.Vec.create total))
        out_nodes
    in
    (* Bit-parallel sweep: 64 assignments per evaluation. *)
    let values = Array.make (Netlist.node_count netlist) 0L in
    let words = Nano_util.Math_ext.ceil_div total 64 in
    for w = 0 to words - 1 do
      let base = w * 64 in
      let input_words =
        Array.init n (fun i ->
            (* Bit lane l carries assignment (base + l): input i's value
               is bit i of that assignment index. *)
            let word = ref 0L in
            for lane = 0 to 63 do
              let a = base + lane in
              if a < total && (a lsr i) land 1 = 1 then
                word := Nano_util.Bits.set !word lane true
            done;
            !word)
      in
      Nano_sim.Bitsim.eval_words_into netlist ~input_words ~values;
      List.iter2
        (fun (_, vec) (_, node) ->
          let word = values.(node) in
          for lane = 0 to 63 do
            let a = base + lane in
            if a < total && Nano_util.Bits.get word lane then
              Nano_util.Bits.Vec.set vec a true
          done)
        tables out_nodes
    done;
    Some
      (List.map
         (fun (name, vec) ->
           (name, Truth_table.of_string ~arity:n (Nano_util.Bits.Vec.to_string vec)))
         tables)
  end

let of_covers ~name ~input_names covers =
  let arity = List.length input_names in
  let b = B.create ~name () in
  let inputs = Array.of_list (List.map (B.input b) input_names) in
  let inverters = Hashtbl.create 16 in
  let literal i polarity =
    if polarity then inputs.(i)
    else begin
      match Hashtbl.find_opt inverters i with
      | Some n -> n
      | None ->
        let n = B.not_ b inputs.(i) in
        Hashtbl.replace inverters i n;
        n
    end
  in
  let products = Hashtbl.create 32 in
  let product cube =
    if Cube.arity cube <> arity then
      invalid_arg "Collapse.of_covers: cube arity mismatch";
    let key = Cube.to_string cube in
    match Hashtbl.find_opt products key with
    | Some n -> n
    | None ->
      let literals = ref [] in
      for i = arity - 1 downto 0 do
        match Cube.literal cube i with
        | Cube.One -> literals := literal i true :: !literals
        | Cube.Zero -> literals := literal i false :: !literals
        | Cube.Dont_care -> ()
      done;
      let n =
        match !literals with
        | [] -> B.const b true
        | [ single ] -> single
        | several -> B.reduce b Gate.And several
      in
      Hashtbl.replace products key n;
      n
  in
  List.iter
    (fun (out_name, cover) ->
      let node =
        match cover with
        | [] -> B.const b false
        | [ single ] -> product single
        | cubes -> B.reduce b Gate.Or (List.map product cubes)
      in
      B.output b out_name node)
    covers;
  B.finish b

let resynthesize ?max_inputs netlist =
  match to_truth_tables ?max_inputs netlist with
  | None -> None
  | Some tables ->
    let covers =
      List.map
        (fun (name, tt) -> (name, Quine_mccluskey.minimize_table tt))
        tables
    in
    let input_names = Netlist.input_names netlist in
    Some
      (of_covers ~name:(Netlist.name netlist) ~input_names covers)
