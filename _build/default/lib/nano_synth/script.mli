(** Synthesis scripts: fixed sequences of passes mirroring the SIS
    flow the paper used to prepare its benchmarks.

    [rugged_lite] stands in for [script.rugged] followed by mapping onto
    a generic max-fanin-3 library (Section 6's methodology): structural
    hashing and local simplification, optional two-level
    collapse/minimization for narrow circuits, arrival-aware tree
    balancing, fanin decomposition, and a final cleanup pass. *)

val rugged_lite :
  ?max_fanin:int -> ?collapse_threshold:int ->
  Nano_netlist.Netlist.t -> Nano_netlist.Netlist.t
(** Defaults: [max_fanin = 3] (the paper's library), and two-level
    resynthesis applied only to circuits with at most
    [collapse_threshold = 10] inputs (where exact minimization is cheap
    and profitable). The result always satisfies
    [Netlist.max_fanin <= max_fanin]. *)

val map_only : ?max_fanin:int -> Nano_netlist.Netlist.t -> Nano_netlist.Netlist.t
(** Just strash + fanin decomposition + strash, no two-level step. *)

val nand_flow : Nano_netlist.Netlist.t -> Nano_netlist.Netlist.t
(** NAND/inverter expansion followed by cleanup — the c499 → c1355
    style transformation. *)
