(** Tree balancing for depth reduction (the classical `balance` pass).

    Chains of associative gates (AND/OR/XOR) whose intermediate results
    have no other fanout are flattened and rebuilt as balanced binary
    trees, combining the earliest-arriving operands first (Huffman-style
    on logic levels). Logic depth never increases, the function is
    preserved, and gate count is unchanged for pure chains. *)

val run : Nano_netlist.Netlist.t -> Nano_netlist.Netlist.t
