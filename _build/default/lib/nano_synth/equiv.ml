module Netlist = Nano_netlist.Netlist

type outcome = Equivalent | Counterexample of (string * bool) list

let interface netlist =
  ( List.sort compare (Netlist.input_names netlist),
    List.sort compare (List.map fst (Netlist.outputs netlist)) )

let check_interfaces a b =
  let ia, oa = interface a in
  let ib, ob = interface b in
  if ia <> ib then invalid_arg "Equiv: input interfaces differ";
  if oa <> ob then invalid_arg "Equiv: output interfaces differ";
  ia

let outputs_for netlist bindings =
  List.sort compare (Netlist.eval netlist bindings)

let try_assignment a b names bits =
  let bindings = List.map2 (fun n v -> (n, v)) names bits in
  if outputs_for a bindings <> outputs_for b bindings then
    Some (Counterexample bindings)
  else None

let exhaustive ?(max_inputs = 16) a b =
  let names = check_interfaces a b in
  let n = List.length names in
  if n > max_inputs then None
  else begin
    let rec go assignment =
      if assignment >= 1 lsl n then Some Equivalent
      else begin
        let bits = List.init n (fun i -> (assignment lsr i) land 1 = 1) in
        match try_assignment a b names bits with
        | Some cex -> Some cex
        | None -> go (assignment + 1)
      end
    in
    go 0
  end

let random ?(seed = 0xe41) ?(vectors = 4096) a b =
  let names = check_interfaces a b in
  let n = List.length names in
  let rng = Nano_util.Prng.create ~seed in
  let rec go i =
    if i >= vectors then Equivalent
    else begin
      let bits = List.init n (fun _ -> Nano_util.Prng.bool rng) in
      match try_assignment a b names bits with
      | Some cex -> cex
      | None -> go (i + 1)
    end
  in
  go 0

exception Too_big

(* Build the BDD of every output of [netlist], with input variables
   assigned by [var_of_name]; raises Too_big past the node budget. *)
let build_output_bdds m ~max_nodes ~var_of_name netlist =
  let module Bdd = Nano_bdd.Bdd in
  let module Gate = Nano_netlist.Gate in
  let n = Netlist.node_count netlist in
  let bdds = Array.make n (Bdd.bdd_false m) in
  let rec at_least k xs =
    if k <= 0 then Bdd.bdd_true m
    else
      match xs with
      | [] -> Bdd.bdd_false m
      | x :: rest -> Bdd.ite m x (at_least (k - 1) rest) (at_least k rest)
  in
  Netlist.iter netlist (fun id info ->
      if Bdd.node_count m > max_nodes then raise Too_big;
      let fan () =
        Array.to_list (Array.map (fun f -> bdds.(f)) info.Netlist.fanins)
      in
      let reduce op xs =
        match xs with
        | [] -> invalid_arg "Equiv.bdd: empty fanin"
        | first :: rest -> List.fold_left (op m) first rest
      in
      bdds.(id) <-
        (match info.Netlist.kind with
        | Gate.Input -> begin
          match info.Netlist.name with
          | Some nm -> Bdd.var m (var_of_name nm)
          | None -> invalid_arg "Equiv.bdd: unnamed input"
        end
        | Gate.Const v -> Bdd.of_bool m v
        | Gate.Buf -> List.nth (fan ()) 0
        | Gate.Not -> Bdd.bnot m (List.nth (fan ()) 0)
        | Gate.And -> reduce Bdd.band (fan ())
        | Gate.Or -> reduce Bdd.bor (fan ())
        | Gate.Nand -> Bdd.bnot m (reduce Bdd.band (fan ()))
        | Gate.Nor -> Bdd.bnot m (reduce Bdd.bor (fan ()))
        | Gate.Xor -> reduce Bdd.bxor (fan ())
        | Gate.Xnor -> Bdd.bnot m (reduce Bdd.bxor (fan ()))
        | Gate.Majority ->
          let xs = fan () in
          at_least ((List.length xs / 2) + 1) xs));
  List.map (fun (name, node) -> (name, bdds.(node))) (Netlist.outputs netlist)

(* Variable-order heuristic: interleave buses by bit index. Names with a
   numeric suffix sort by (index, prefix) so a0 b0 a1 b1 ... come out
   adjacent — the order that keeps adder/comparator BDDs linear. *)
let split_numeric_suffix name =
  let n = String.length name in
  let rec start i =
    if i > 0 && name.[i - 1] >= '0' && name.[i - 1] <= '9' then start (i - 1)
    else i
  in
  let s = start n in
  if s = n then (name, max_int)
  else (String.sub name 0 s, int_of_string (String.sub name s (n - s)))

let interleaved_order names =
  let keyed =
    List.map (fun nm -> (split_numeric_suffix nm, nm)) names
  in
  let sorted =
    List.sort
      (fun ((p1, i1), _) ((p2, i2), _) ->
        match compare i1 i2 with 0 -> compare p1 p2 | c -> c)
      keyed
  in
  List.map snd sorted

let bdd ?(max_nodes = 200_000) a b =
  let module Bdd = Nano_bdd.Bdd in
  let names = check_interfaces a b in
  let var_index = Hashtbl.create 16 in
  List.iteri (fun i nm -> Hashtbl.replace var_index nm i) (interleaved_order names);
  let var_of_name nm = Hashtbl.find var_index nm in
  let m = Bdd.manager () in
  match
    ( build_output_bdds m ~max_nodes ~var_of_name a,
      build_output_bdds m ~max_nodes ~var_of_name b )
  with
  | exception Too_big -> None
  | outs_a, outs_b ->
    let mismatch =
      List.find_map
        (fun (name, fa) ->
          let fb = List.assoc name outs_b in
          if Bdd.equal fa fb then None
          else Some (Bdd.bxor m fa fb))
        outs_a
    in
    (match mismatch with
    | None -> Some Equivalent
    | Some diff -> begin
      match Bdd.any_sat m diff with
      | None -> Some Equivalent (* unreachable: diff is non-false *)
      | Some partial ->
        let assignment =
          List.map
            (fun nm ->
              let v =
                match List.assoc_opt (var_of_name nm) partial with
                | Some value -> value
                | None -> false
              in
              (nm, v))
            names
        in
        Some (Counterexample assignment)
    end)

let check ?seed ?vectors a b =
  if List.length (Netlist.inputs a) <= 12 then
    match exhaustive a b with
    | Some outcome -> outcome
    | None -> random ?seed ?vectors a b
  else begin
    (* Multiplier-like structures have exponential BDDs; only attempt
       the formal check on moderately sized cones. *)
    let tractable n = Netlist.size n <= 600 in
    if tractable a && tractable b then begin
      match bdd a b with
      | Some outcome -> outcome
      | None -> random ?seed ?vectors a b
    end
    else random ?seed ?vectors a b
  end
