module Netlist = Nano_netlist.Netlist
module B = Nano_netlist.Netlist.Builder
module Gate = Nano_netlist.Gate

let chunks ~size xs =
  let rec go acc current count = function
    | [] ->
      let acc = if current = [] then acc else List.rev current :: acc in
      List.rev acc
    | x :: rest ->
      if count = size then go (List.rev current :: acc) [ x ] 1 rest
      else go acc (x :: current) (count + 1) rest
  in
  go [] [] 0 xs

(* Balanced reduction tree of [kind] gates with fanin <= k; every level
   groups up to k operands. *)
let tree b kind ~k nodes =
  let rec reduce = function
    | [ single ] -> single
    | level ->
      let next =
        List.map
          (fun group ->
            match group with
            | [ single ] -> single
            | several -> B.add b kind several)
          (chunks ~size:k level)
      in
      reduce next
  in
  reduce nodes

let run ~max_fanin netlist =
  if max_fanin < 2 then invalid_arg "Fanin_limit.run: max_fanin >= 2";
  let k = max_fanin in
  let b = B.create ~name:(Netlist.name netlist) () in
  let map = Array.make (Netlist.node_count netlist) (-1) in
  List.iter
    (fun id ->
      let name =
        match (Netlist.info netlist id).Netlist.name with
        | Some n -> n
        | None -> Printf.sprintf "_in%d" id
      in
      map.(id) <- B.input b name)
    (Netlist.inputs netlist);
  Netlist.iter netlist (fun id info ->
      match info.Netlist.kind with
      | Gate.Input -> ()
      | kind ->
        let fanins =
          Array.to_list (Array.map (fun f -> map.(f)) info.Netlist.fanins)
        in
        let arity = List.length fanins in
        map.(id) <-
          (if arity <= k then B.add b kind fanins
           else
             match kind with
             | Gate.And -> tree b Gate.And ~k fanins
             | Gate.Or -> tree b Gate.Or ~k fanins
             | Gate.Xor -> tree b Gate.Xor ~k fanins
             | Gate.Nand -> B.not_ b (tree b Gate.And ~k fanins)
             | Gate.Nor -> B.not_ b (tree b Gate.Or ~k fanins)
             | Gate.Xnor -> B.not_ b (tree b Gate.Xor ~k fanins)
             | Gate.Majority ->
               invalid_arg
                 "Fanin_limit.run: majority gate wider than max_fanin"
             | Gate.Input | Gate.Const _ | Gate.Buf | Gate.Not ->
               assert false))
    ;
  List.iter
    (fun (name, node) -> B.output b name map.(node))
    (Netlist.outputs netlist);
  B.finish b
