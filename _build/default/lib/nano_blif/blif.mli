(** Reader and writer for the Berkeley Logic Interchange Format (BLIF),
    the exchange format used by SIS — the tool the paper's benchmarks were
    prepared with.

    Only the combinational subset is supported: [.model], [.inputs],
    [.outputs], [.names] (single-output covers) and [.end]. [.latch] and
    hierarchy ([.subckt]) are rejected with a parse error, since the
    paper's framework covers combinational circuits (sequential treatment
    is its stated future work). *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse_string : string -> (Nano_netlist.Netlist.t, error) result
(** Parse a BLIF model. Each [.names] cover is expanded into two-level
    AND/OR/NOT logic over the netlist's primitive gates; degenerate covers
    become constants or buffers. *)

val parse_file : string -> (Nano_netlist.Netlist.t, error) result

val to_string : Nano_netlist.Netlist.t -> string
(** Serialize a netlist; every logic gate becomes one [.names] cover. *)

val write_file : string -> Nano_netlist.Netlist.t -> unit
