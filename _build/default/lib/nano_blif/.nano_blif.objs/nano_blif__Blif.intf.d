lib/nano_blif/blif.mli: Format Nano_netlist
