lib/nano_blif/blif.ml: Array Buffer Format Hashtbl Int64 List Nano_netlist Nano_util Printf String
