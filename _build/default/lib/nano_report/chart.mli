(** Minimal ASCII line charts for terminal output of figure sweeps.

    One character cell per grid position; each series is drawn with its
    own glyph, and overlapping points show the later series' glyph. Axes
    can be linear or logarithmic. *)

type scale = Linear | Log

val render :
  ?width:int ->
  ?height:int ->
  ?x_scale:scale ->
  ?y_scale:scale ->
  title:string ->
  (string * (float * float) list) list ->
  string
(** [render ~title series] draws labelled series into a
    [width x height] grid (default 64 x 20) with a legend underneath.
    Log scales ignore non-positive coordinates. Returns a printable
    multi-line string; an empty or degenerate input yields a message
    string rather than raising. *)
