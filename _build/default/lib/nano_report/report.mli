(** Plain-text rendering of tables and data series for the figure
    harness and the CLI. *)

module Table : sig
  val render : header:string list -> rows:string list list -> string
  (** Column-aligned ASCII table with a separator under the header. Rows
      may be ragged; missing cells render empty. *)

  val number : ?decimals:int -> float -> string
  (** Compact numeric formatting ([%.*g]-style, default 4 significant
      digits; infinities as ["inf"], NaN as ["-"]). *)
end

module Series : sig
  val render :
    title:string ->
    x_label:string ->
    y_label:string ->
    (string * (float * float) list) list ->
    string
  (** Render labelled series as a merged table: first column the union of
      x values, one column per series. *)
end

module Csv : sig
  val to_string : header:string list -> rows:string list list -> string
  (** RFC-4180-ish CSV (quotes fields containing commas/quotes). *)

  val write_file :
    path:string -> header:string list -> rows:string list list -> unit
end
