module Table = struct
  let number ?(decimals = 4) x =
    if Float.is_nan x then "-"
    else if x = infinity then "inf"
    else if x = neg_infinity then "-inf"
    else Printf.sprintf "%.*g" decimals x

  let render ~header ~rows =
    let cell row i = match List.nth_opt row i with Some c -> c | None -> "" in
    let columns = List.length header in
    let width i =
      List.fold_left
        (fun acc row -> max acc (String.length (cell row i)))
        (String.length (List.nth header i))
        rows
    in
    let widths = List.init columns width in
    let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
    let line cells =
      String.concat "  "
        (List.mapi (fun i c -> pad c (List.nth widths i)) cells)
    in
    let sep =
      String.concat "  " (List.map (fun w -> String.make w '-') widths)
    in
    let body = List.map (fun row -> line (List.init columns (cell row))) rows in
    String.concat "\n" ((line header :: sep :: body) @ [ "" ])
end

module Series = struct
  module Float_map = Map.Make (Float)

  let render ~title ~x_label ~y_label series =
    let merged =
      List.fold_left
        (fun acc (label, points) ->
          List.fold_left
            (fun acc (x, y) ->
              let row =
                match Float_map.find_opt x acc with
                | Some row -> row
                | None -> []
              in
              Float_map.add x ((label, y) :: row) acc)
            acc points)
        Float_map.empty series
    in
    let labels = List.map fst series in
    let header = x_label :: labels in
    let rows =
      Float_map.bindings merged
      |> List.map (fun (x, cells) ->
             Table.number ~decimals:5 x
             :: List.map
                  (fun label ->
                    match List.assoc_opt label cells with
                    | Some y -> Table.number y
                    | None -> "")
                  labels)
    in
    Printf.sprintf "== %s ==  (y: %s)\n%s" title y_label
      (Table.render ~header ~rows)
end

module Csv = struct
  let escape field =
    let needs_quoting =
      String.exists (fun c -> c = ',' || c = '"' || c = '\n') field
    in
    if needs_quoting then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' field) ^ "\""
    else field

  let to_string ~header ~rows =
    let line cells = String.concat "," (List.map escape cells) in
    String.concat "\n" (line header :: List.map line rows) ^ "\n"

  let write_file ~path ~header ~rows =
    let oc = open_out path in
    output_string oc (to_string ~header ~rows);
    close_out oc
end
