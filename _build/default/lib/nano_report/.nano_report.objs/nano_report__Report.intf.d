lib/nano_report/report.mli:
