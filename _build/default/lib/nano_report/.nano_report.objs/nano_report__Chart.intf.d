lib/nano_report/chart.mli:
