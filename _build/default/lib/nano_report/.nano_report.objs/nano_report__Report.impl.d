lib/nano_report/report.ml: Float List Map Printf String
