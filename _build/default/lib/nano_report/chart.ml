type scale = Linear | Log

let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |]

let transform scale v =
  match scale with
  | Linear -> Some v
  | Log -> if v > 0. then Some (log v) else None

let render ?(width = 64) ?(height = 20) ?(x_scale = Linear)
    ?(y_scale = Linear) ~title series =
  let points =
    List.concat_map
      (fun (_, pts) ->
        List.filter_map
          (fun (x, y) ->
            match transform x_scale x, transform y_scale y with
            | Some tx, Some ty -> Some (tx, ty)
            | _ -> None)
          pts)
      series
  in
  match points with
  | [] -> Printf.sprintf "== %s ==\n(no drawable points)\n" title
  | (x0, y0) :: rest ->
    let fold f init = List.fold_left f init rest in
    let x_min = fold (fun acc (x, _) -> Float.min acc x) x0 in
    let x_max = fold (fun acc (x, _) -> Float.max acc x) x0 in
    let y_min = fold (fun acc (_, y) -> Float.min acc y) y0 in
    let y_max = fold (fun acc (_, y) -> Float.max acc y) y0 in
    let x_span = if x_max = x_min then 1. else x_max -. x_min in
    let y_span = if y_max = y_min then 1. else y_max -. y_min in
    let grid = Array.make_matrix height width ' ' in
    List.iteri
      (fun si (_, pts) ->
        let glyph = glyphs.(si mod Array.length glyphs) in
        List.iter
          (fun (x, y) ->
            match transform x_scale x, transform y_scale y with
            | Some tx, Some ty ->
              let col =
                int_of_float ((tx -. x_min) /. x_span *. float_of_int (width - 1))
              in
              let row =
                height - 1
                - int_of_float ((ty -. y_min) /. y_span *. float_of_int (height - 1))
              in
              if row >= 0 && row < height && col >= 0 && col < width then
                grid.(row).(col) <- glyph
            | _ -> ())
          pts)
      series;
    let buf = Buffer.create ((width + 12) * (height + 6)) in
    Buffer.add_string buf (Printf.sprintf "== %s ==\n" title);
    let y_label row =
      (* value at this row's centre *)
      let frac = float_of_int (height - 1 - row) /. float_of_int (height - 1) in
      let v = y_min +. (frac *. y_span) in
      let v = match y_scale with Linear -> v | Log -> exp v in
      Printf.sprintf "%9.3g" v
    in
    Array.iteri
      (fun row line ->
        let label =
          if row = 0 || row = height - 1 || row = height / 2 then y_label row
          else String.make 9 ' '
        in
        Buffer.add_string buf (label ^ " |");
        Buffer.add_string buf (String.init width (fun c -> line.(c)));
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (String.make 10 ' ' ^ "+" ^ String.make width '-' ^ "\n");
    let x_of frac =
      let v = x_min +. (frac *. x_span) in
      match x_scale with Linear -> v | Log -> exp v
    in
    Buffer.add_string buf
      (Printf.sprintf "%s%-10.3g%*.3g\n" (String.make 11 ' ') (x_of 0.)
         (width - 10) (x_of 1.));
    List.iteri
      (fun si (label, _) ->
        Buffer.add_string buf
          (Printf.sprintf "  %c %s\n" glyphs.(si mod Array.length glyphs) label))
      series;
    Buffer.contents buf
