(** Bit-level helpers on [int64] words and packed bit vectors. *)

val popcount64 : int64 -> int
(** Number of set bits in a 64-bit word. *)

val parity64 : int64 -> bool
(** XOR of all 64 bits. *)

val get : int64 -> int -> bool
(** [get w i] is bit [i] (0 = least significant) of [w]. Requires
    [0 <= i < 64]. *)

val set : int64 -> int -> bool -> int64
(** [set w i b] is [w] with bit [i] forced to [b]. *)

val ones_below : int -> int64
(** [ones_below n] is a word with bits [0 .. n-1] set. Requires
    [0 <= n <= 64]. *)

(** Packed vector of bits of arbitrary length, stored in [int64] words.
    Used as the backing store for truth tables and simulation waveforms. *)
module Vec : sig
  type t

  val create : int -> t
  (** [create len] is an all-zero vector of [len] bits. *)

  val length : t -> int
  val get : t -> int -> bool
  val set : t -> int -> bool -> unit
  val copy : t -> t
  val equal : t -> t -> bool
  val popcount : t -> int
  val fill : t -> bool -> unit

  val map2_into : dst:t -> (int64 -> int64 -> int64) -> t -> t -> unit
  (** Word-wise binary operation; all three vectors must share a length.
      Bits beyond [length] are kept zero. *)

  val fold_bits : (int -> bool -> 'a -> 'a) -> t -> 'a -> 'a
  (** Fold over indices in increasing order. *)

  val to_string : t -> string
  (** Bits as ['0']/['1'] characters, index 0 first. *)

  val of_string : string -> t
  (** Inverse of {!to_string}; accepts only ['0'] and ['1']. *)
end
