lib/nano_util/prng.ml: Array Int64
