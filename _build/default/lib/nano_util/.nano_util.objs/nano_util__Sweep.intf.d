lib/nano_util/sweep.mli:
