lib/nano_util/math_ext.mli:
