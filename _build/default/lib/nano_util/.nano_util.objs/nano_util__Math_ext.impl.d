lib/nano_util/math_ext.ml: Float List
