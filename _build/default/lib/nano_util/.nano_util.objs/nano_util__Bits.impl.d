lib/nano_util/bits.ml: Array Int64 String
