lib/nano_util/stats.ml: Format List
