lib/nano_util/prng.mli:
