lib/nano_util/sweep.ml: List
