lib/nano_util/bits.mli:
