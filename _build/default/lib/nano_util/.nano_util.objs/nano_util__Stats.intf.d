lib/nano_util/stats.mli: Format
