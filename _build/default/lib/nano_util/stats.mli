(** Streaming summary statistics (Welford's algorithm). *)

type t
(** Mutable accumulator. *)

val create : unit -> t

val add : t -> float -> unit
(** Feed one observation. *)

val add_many : t -> float list -> unit

val count : t -> int
val mean : t -> float
(** Mean of the observations so far; [0.] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [0.] when fewer than two observations. *)

val stddev : t -> float
val min_value : t -> float
(** Smallest observation. Raises [Invalid_argument] when empty. *)

val max_value : t -> float
(** Largest observation. Raises [Invalid_argument] when empty. *)

val confidence95 : t -> float
(** Half-width of the normal-approximation 95% confidence interval of the
    mean ([1.96 * stddev / sqrt count]); [0.] when fewer than two
    observations. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  ci95 : float;
}

val summary : t -> summary
(** Snapshot of the accumulator. Raises [Invalid_argument] when empty. *)

val pp_summary : Format.formatter -> summary -> unit
