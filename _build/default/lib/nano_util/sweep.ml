let linear ~lo ~hi ~steps =
  assert (steps >= 2);
  assert (lo <= hi);
  let h = (hi -. lo) /. float_of_int (steps - 1) in
  List.init steps (fun i ->
      if i = steps - 1 then hi else lo +. (float_of_int i *. h))

let logarithmic ~lo ~hi ~steps =
  assert (steps >= 2);
  assert (lo > 0. && lo <= hi);
  let llo = log lo and lhi = log hi in
  let h = (lhi -. llo) /. float_of_int (steps - 1) in
  List.init steps (fun i ->
      if i = steps - 1 then hi else exp (llo +. (float_of_int i *. h)))

let epsilon_grid ?(lo = 1e-4) ?(hi = 0.45) ?(steps = 40) () =
  assert (lo > 0. && hi < 0.5);
  logarithmic ~lo ~hi ~steps

let ints ~lo ~hi = if hi < lo then [] else List.init (hi - lo + 1) (fun i -> lo + i)
