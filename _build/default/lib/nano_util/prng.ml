type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 finalizer (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = mix seed }

let copy t = { state = t.state }

let float t =
  (* 53 high-quality bits -> [0,1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1. /. 9007199254740992.)

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let bernoulli t ~p =
  assert (p >= 0. && p <= 1.);
  float t < p

let int t ~bound =
  assert (bound > 0);
  (* Rejection-free for our purposes: modulo bias is negligible for the
     small bounds used here, but use the high bits to be safe. *)
  let x = Int64.shift_right_logical (bits64 t) 1 in
  Int64.to_int (Int64.rem x (Int64.of_int bound))

let word_with_density t ~p =
  assert (p >= 0. && p <= 1.);
  if p = 0.5 then bits64 t
  else begin
    let word = ref 0L in
    for i = 0 to 63 do
      if float t < p then word := Int64.logor !word (Int64.shift_left 1L i)
    done;
    !word
  end

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
