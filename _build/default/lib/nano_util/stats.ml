type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
}

let create () = { n = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let add_many t xs = List.iter (add t) xs
let count t = t.n
let mean t = if t.n = 0 then 0. else t.mean
let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)

let min_value t =
  if t.n = 0 then invalid_arg "Stats.min_value: empty" else t.min

let max_value t =
  if t.n = 0 then invalid_arg "Stats.max_value: empty" else t.max

let confidence95 t =
  if t.n < 2 then 0. else 1.96 *. stddev t /. sqrt (float_of_int t.n)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  ci95 : float;
}

let summary (t : t) =
  if t.n = 0 then invalid_arg "Stats.summary: empty";
  {
    n = t.n;
    mean = mean t;
    stddev = stddev t;
    min = t.min;
    max = t.max;
    ci95 = confidence95 t;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.6g sd=%.3g min=%.6g max=%.6g ±%.3g" s.n
    s.mean s.stddev s.min s.max s.ci95
