(** Parameter sweeps used by the figure and benchmark drivers. *)

val linear : lo:float -> hi:float -> steps:int -> float list
(** [linear ~lo ~hi ~steps] is [steps] evenly spaced points with the first
    at [lo] and the last at [hi]. Requires [steps >= 2] and [lo <= hi]. *)

val logarithmic : lo:float -> hi:float -> steps:int -> float list
(** Log-spaced points; requires [0 < lo <= hi] and [steps >= 2]. *)

val epsilon_grid : ?lo:float -> ?hi:float -> ?steps:int -> unit -> float list
(** Default device-error grid used by the paper's figures: log-spaced from
    [lo] (default [1e-4]) to [hi] (default [0.45]) with [steps] (default
    40) points. All values lie strictly inside [(0, 0.5)]. *)

val ints : lo:int -> hi:int -> int list
(** [ints ~lo ~hi] is [lo; lo+1; ...; hi] (empty when [hi < lo]). *)
