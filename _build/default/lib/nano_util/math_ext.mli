(** Numeric helpers shared across the library.

    All logarithms used by the paper's bounds are base two; [log2] and the
    entropy helpers below follow that convention. *)

val log2 : float -> float
(** [log2 x] is the base-two logarithm of [x]. Requires [x > 0.]. *)

val xlog2x : float -> float
(** [xlog2x x] is [x *. log2 x] extended by continuity with value [0.] at
    [x = 0.]. Requires [0. <= x]. *)

val binary_entropy : float -> float
(** [binary_entropy p] is the Shannon entropy (base 2) of a Bernoulli(p)
    variable: [- p log2 p - (1-p) log2 (1-p)]. Requires [0. <= p <= 1.].
    Returns a value in [[0., 1.]]. *)

val clamp : lo:float -> hi:float -> float -> float
(** [clamp ~lo ~hi x] is [x] limited to the closed interval [[lo, hi]].
    Requires [lo <= hi]. *)

val clamp_int : lo:int -> hi:int -> int -> int
(** Integer version of {!clamp}. *)

val approx_equal : ?tol:float -> float -> float -> bool
(** [approx_equal ?tol a b] holds when [a] and [b] differ by at most [tol]
    in absolute terms or [tol] in relative terms (whichever is looser).
    [tol] defaults to [1e-9]. *)

val is_finite : float -> bool
(** [is_finite x] is true when [x] is neither infinite nor NaN. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is [ceil (a / b)] on non-negative integers. Requires
    [b > 0]. *)

val int_pow : int -> int -> int
(** [int_pow base e] is [base ^ e] over integers. Requires [e >= 0]. *)

val float_pow_int : float -> int -> float
(** [float_pow_int x n] is [x ^ n] computed by repeated squaring; exact for
    small integer exponents and faster than [( ** )]. Requires [n >= 0]. *)

val ceil_log2 : int -> int
(** [ceil_log2 n] is the least [d] with [2^d >= n]. Requires [n >= 1]. *)

val ceil_log_base : int -> int -> int
(** [ceil_log_base k n] is the least [d] with [k^d >= n]. Requires
    [k >= 2] and [n >= 1]. *)

val mean : float list -> float
(** Arithmetic mean. Requires a non-empty list. *)

val geometric_mean : float list -> float
(** Geometric mean of strictly positive values. Requires a non-empty list
    of positive floats. *)
