(** Deterministic splittable pseudo-random number generator.

    A small SplitMix64 implementation so that simulations are reproducible
    independent of the OCaml stdlib [Random] implementation, and so that
    parallel experiment legs can draw from decorrelated streams via
    {!split}. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] makes a fresh generator; equal seeds give equal
    streams. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    decorrelated from the parent's subsequent output. *)

val copy : t -> t
(** [copy t] duplicates the current state; both copies then produce the
    same stream. *)

val bits64 : t -> int64
(** Next raw 64-bit value. *)

val float : t -> float
(** [float t] draws uniformly from [[0, 1)] with 53-bit resolution. *)

val bool : t -> bool
(** Fair coin flip. *)

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is true with probability [p]. Requires
    [0. <= p <= 1.]. *)

val int : t -> bound:int -> int
(** [int t ~bound] draws uniformly from [[0, bound)]. Requires
    [bound > 0]. *)

val word_with_density : t -> p:float -> int64
(** [word_with_density t ~p] returns a 64-bit word in which each bit is
    independently one with probability [p]; used by bit-parallel
    simulation. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle driven by this generator. *)
