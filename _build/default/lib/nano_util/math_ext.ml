let log2 x =
  assert (x > 0.);
  log x /. log 2.

let xlog2x x =
  assert (x >= 0.);
  if x = 0. then 0. else x *. log2 x

let binary_entropy p =
  assert (p >= 0. && p <= 1.);
  -.xlog2x p -. xlog2x (1. -. p)

let clamp ~lo ~hi x =
  assert (lo <= hi);
  if x < lo then lo else if x > hi then hi else x

let clamp_int ~lo ~hi x =
  assert (lo <= hi);
  if x < lo then lo else if x > hi then hi else x

let approx_equal ?(tol = 1e-9) a b =
  let diff = Float.abs (a -. b) in
  diff <= tol || diff <= tol *. Float.max (Float.abs a) (Float.abs b)

let is_finite x = Float.is_finite x

let ceil_div a b =
  assert (b > 0);
  assert (a >= 0);
  (a + b - 1) / b

let int_pow base e =
  assert (e >= 0);
  let rec go acc base e =
    if e = 0 then acc
    else if e land 1 = 1 then go (acc * base) (base * base) (e lsr 1)
    else go acc (base * base) (e lsr 1)
  in
  go 1 base e

let float_pow_int x n =
  assert (n >= 0);
  let rec go acc x n =
    if n = 0 then acc
    else if n land 1 = 1 then go (acc *. x) (x *. x) (n lsr 1)
    else go acc (x *. x) (n lsr 1)
  in
  go 1. x n

let ceil_log2 n =
  assert (n >= 1);
  let rec go d pow = if pow >= n then d else go (d + 1) (pow * 2) in
  go 0 1

let ceil_log_base k n =
  assert (k >= 2);
  assert (n >= 1);
  let rec go d pow = if pow >= n then d else go (d + 1) (pow * k) in
  go 0 1

let mean xs =
  match xs with
  | [] -> invalid_arg "Math_ext.mean: empty list"
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let geometric_mean xs =
  match xs with
  | [] -> invalid_arg "Math_ext.geometric_mean: empty list"
  | _ ->
    let sum_logs =
      List.fold_left
        (fun acc x ->
          if x <= 0. then
            invalid_arg "Math_ext.geometric_mean: non-positive value"
          else acc +. log x)
        0. xs
    in
    exp (sum_logs /. float_of_int (List.length xs))
