(** Static timing analysis: arrival times and the critical path under a
    per-gate delay model.

    Levels (unit delays) are what the paper's depth bound speaks about;
    this module generalizes to fanin-dependent gate delays so mapped
    netlists can be compared on realistic latency. *)

type t = {
  arrival : float array;  (** Per node id; sources arrive at 0. *)
  max_arrival : float;  (** Latest primary-output arrival. *)
  critical_output : string;  (** Output achieving [max_arrival]. *)
  critical_path : Netlist.node list;
      (** Nodes from a primary input (or constant) to the critical
          output's driver, in signal-flow order. *)
  downstream : float array;
      (** Per node id: longest delay from the node to any primary
          output; [neg_infinity] marks unobservable nodes (no timing
          requirement — {!slack} reports [infinity] there). *)
}

val default_delay : Gate.kind -> int -> float
(** The generic-library model: sources and buffers are free; an
    [n]-input gate costs [1 + 0.2 * (n - 2)] delay units (wider gates
    are slower); inverters cost [0.6]. *)

val unit_delay : Gate.kind -> int -> float
(** Every logic gate costs exactly 1 (sources and buffers 0) — arrival
    times equal the paper's logic levels. *)

val analyze :
  ?delay:(Gate.kind -> int -> float) -> Netlist.t -> t
(** [analyze netlist] with [delay] defaulting to {!default_delay}.
    Raises [Invalid_argument] on netlists without outputs (impossible
    for built netlists). *)

val slack : t -> required:float -> float array
(** Per-node slack against a required arrival time at every primary
    output: [required - arrival - longest_downstream_delay]; negative
    slack marks nodes on paths that miss the requirement. *)
