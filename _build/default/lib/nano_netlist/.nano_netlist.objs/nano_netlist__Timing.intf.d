lib/nano_netlist/timing.mli: Gate Netlist
