lib/nano_netlist/netlist.ml: Array Buffer Gate Hashtbl List Printf
