lib/nano_netlist/gate.ml: Array Int64 Nano_util
