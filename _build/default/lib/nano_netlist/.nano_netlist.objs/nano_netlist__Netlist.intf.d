lib/nano_netlist/netlist.mli: Gate
