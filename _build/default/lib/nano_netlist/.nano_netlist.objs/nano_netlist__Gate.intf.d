lib/nano_netlist/gate.mli:
