lib/nano_netlist/timing.ml: Array Float Gate List Netlist
