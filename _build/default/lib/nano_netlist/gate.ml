type kind =
  | Input
  | Const of bool
  | Buf
  | Not
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor
  | Majority

let arity_ok kind n =
  match kind with
  | Input | Const _ -> n = 0
  | Buf | Not -> n = 1
  | And | Or | Nand | Nor -> n >= 2
  | Xor | Xnor -> n >= 2
  | Majority -> n >= 3 && n land 1 = 1

let eval kind inputs =
  let n = Array.length inputs in
  let popcount () =
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 inputs
  in
  match kind with
  | Input -> invalid_arg "Gate.eval: Input has no combinational semantics"
  | Const b -> b
  | Buf -> inputs.(0)
  | Not -> not inputs.(0)
  | And -> popcount () = n
  | Nand -> popcount () <> n
  | Or -> popcount () > 0
  | Nor -> popcount () = 0
  | Xor -> popcount () land 1 = 1
  | Xnor -> popcount () land 1 = 0
  | Majority -> popcount () > n / 2

let eval_word kind inputs =
  let n = Array.length inputs in
  let fold_op op init = Array.fold_left op init inputs in
  match kind with
  | Input -> invalid_arg "Gate.eval_word: Input has no combinational semantics"
  | Const b -> if b then -1L else 0L
  | Buf -> inputs.(0)
  | Not -> Int64.lognot inputs.(0)
  | And -> fold_op Int64.logand (-1L)
  | Nand -> Int64.lognot (fold_op Int64.logand (-1L))
  | Or -> fold_op Int64.logor 0L
  | Nor -> Int64.lognot (fold_op Int64.logor 0L)
  | Xor -> fold_op Int64.logxor 0L
  | Xnor -> Int64.lognot (fold_op Int64.logxor 0L)
  | Majority ->
    (* Per-lane popcount threshold via bitwise majority accumulation:
       lane-wise count of ones kept in binary counters c0..c3 (n <= 15 in
       practice; support any n by folding counters functionally). *)
    let result = ref 0L in
    for lane = 0 to 63 do
      let count = ref 0 in
      for i = 0 to n - 1 do
        if Nano_util.Bits.get inputs.(i) lane then incr count
      done;
      if !count > n / 2 then result := Nano_util.Bits.set !result lane true
    done;
    !result

let is_source = function
  | Input | Const _ -> true
  | Buf | Not | And | Or | Nand | Nor | Xor | Xnor | Majority -> false

let name = function
  | Input -> "input"
  | Const false -> "const0"
  | Const true -> "const1"
  | Buf -> "buf"
  | Not -> "not"
  | And -> "and"
  | Or -> "or"
  | Nand -> "nand"
  | Nor -> "nor"
  | Xor -> "xor"
  | Xnor -> "xnor"
  | Majority -> "maj"

let of_name = function
  | "input" -> Some Input
  | "const0" -> Some (Const false)
  | "const1" -> Some (Const true)
  | "buf" -> Some Buf
  | "not" -> Some Not
  | "and" -> Some And
  | "or" -> Some Or
  | "nand" -> Some Nand
  | "nor" -> Some Nor
  | "xor" -> Some Xor
  | "xnor" -> Some Xnor
  | "maj" -> Some Majority
  | _ -> None

let all_logic_kinds = [ Buf; Not; And; Or; Nand; Nor; Xor; Xnor; Majority ]
