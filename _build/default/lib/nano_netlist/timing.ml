type t = {
  arrival : float array;
  max_arrival : float;
  critical_output : string;
  critical_path : Netlist.node list;
  downstream : float array;
      (* longest delay from the node to any primary output *)
}

let default_delay kind arity =
  match kind with
  | Gate.Input | Gate.Const _ | Gate.Buf -> 0.
  | Gate.Not -> 0.6
  | Gate.And | Gate.Or | Gate.Nand | Gate.Nor | Gate.Xor | Gate.Xnor
  | Gate.Majority ->
    1. +. (0.2 *. float_of_int (max 0 (arity - 2)))

let unit_delay kind _arity =
  match kind with
  | Gate.Input | Gate.Const _ | Gate.Buf -> 0.
  | Gate.Not | Gate.And | Gate.Or | Gate.Nand | Gate.Nor | Gate.Xor
  | Gate.Xnor | Gate.Majority -> 1.

let analyze ?(delay = default_delay) netlist =
  let n = Netlist.node_count netlist in
  let arrival = Array.make n 0. in
  let gate_delay = Array.make n 0. in
  Netlist.iter netlist (fun id info ->
      let d = delay info.Netlist.kind (Array.length info.Netlist.fanins) in
      gate_delay.(id) <- d;
      if not (Gate.is_source info.Netlist.kind) then begin
        let latest =
          Array.fold_left
            (fun acc f -> Float.max acc arrival.(f))
            0. info.Netlist.fanins
        in
        arrival.(id) <- latest +. d
      end);
  let critical_output, critical_node, max_arrival =
    match Netlist.outputs netlist with
    | [] -> invalid_arg "Timing.analyze: no outputs"
    | (name0, node0) :: rest ->
      List.fold_left
        (fun (bn, bo, ba) (name, node) ->
          if arrival.(node) > ba then (name, node, arrival.(node))
          else (bn, bo, ba))
        (name0, node0, arrival.(node0))
        rest
  in
  (* Backtrack along latest-arriving fanins. *)
  let rec back node acc =
    let info = Netlist.info netlist node in
    if Gate.is_source info.Netlist.kind then node :: acc
    else begin
      let worst =
        Array.fold_left
          (fun best f ->
            match best with
            | None -> Some f
            | Some b -> if arrival.(f) > arrival.(b) then Some f else best)
          None info.Netlist.fanins
      in
      match worst with
      | Some f -> back f (node :: acc)
      | None -> node :: acc
    end
  in
  let critical_path = back critical_node [] in
  (* Longest downstream delay (to any output). *)
  let downstream = Array.make n neg_infinity in
  List.iter
    (fun (_, node) -> downstream.(node) <- Float.max downstream.(node) 0.)
    (Netlist.outputs netlist);
  for id = n - 1 downto 0 do
    if downstream.(id) > neg_infinity then begin
      let info = Netlist.info netlist id in
      let through = downstream.(id) +. gate_delay.(id) in
      Array.iter
        (fun f -> downstream.(f) <- Float.max downstream.(f) through)
        info.Netlist.fanins
    end
  done;
  (* Nodes feeding nothing observable keep [neg_infinity]: they have no
     timing requirement, which {!slack} maps to infinite slack. *)
  { arrival; max_arrival; critical_output; critical_path; downstream }

let slack t ~required =
  Array.mapi
    (fun i a ->
      if t.downstream.(i) = neg_infinity then infinity
      else required -. a -. t.downstream.(i))
    t.arrival
