(** Gate kinds of the generic technology library.

    The paper's device model treats "gate" and "device" as the same
    entity; every kind below is a single switching device whose output may
    be corrupted by the symmetric error channel. *)

type kind =
  | Input  (** Primary input; no fanins. *)
  | Const of bool  (** Constant driver; no fanins. *)
  | Buf
  | Not
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor
  | Majority  (** Odd-arity majority; the voter primitive. *)

val arity_ok : kind -> int -> bool
(** Whether a gate of this kind may have the given number of fanins. *)

val eval : kind -> bool array -> bool
(** Combinational semantics. [Input] gates cannot be evaluated this way
    and raise [Invalid_argument]. *)

val eval_word : kind -> int64 array -> int64
(** 64-way bit-parallel semantics (each bit lane is an independent
    evaluation). Raises like {!eval} for [Input]. *)

val is_source : kind -> bool
(** True for [Input] and [Const _]: gates with no logic fanins. *)

val name : kind -> string
val of_name : string -> kind option
(** Inverse of {!name} for non-parameterized kinds plus ["const0"] /
    ["const1"]. *)

val all_logic_kinds : kind list
(** Every kind except [Input] and [Const _]; used by exhaustive tests. *)
