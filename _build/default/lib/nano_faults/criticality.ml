module Netlist = Nano_netlist.Netlist
module Gate = Nano_netlist.Gate

type result = { observability : float array; vectors : int }

(* Evaluate the netlist with node [faulty]'s value inverted. *)
let eval_with_flip netlist ~input_words ~values ~faulty =
  List.iteri
    (fun i id ->
      values.(id) <- input_words.(i);
      if id = faulty then values.(id) <- Int64.lognot values.(id))
    (Netlist.inputs netlist);
  Netlist.iter netlist (fun id info ->
      match info.Netlist.kind with
      | Gate.Input -> ()
      | kind ->
        let words = Array.map (fun f -> values.(f)) info.Netlist.fanins in
        let v = Gate.eval_word kind words in
        values.(id) <- (if id = faulty then Int64.lognot v else v))

let analyze ?(seed = 0xc817) ?(vectors = 1024) netlist =
  let rng = Nano_util.Prng.create ~seed in
  let words = Nano_util.Math_ext.ceil_div vectors 64 in
  let n = Netlist.node_count netlist in
  let n_in = List.length (Netlist.inputs netlist) in
  let golden = Array.make n 0L in
  let faulty_values = Array.make n 0L in
  let hits = Array.make n 0 in
  let outputs = Netlist.outputs netlist in
  for _ = 1 to words do
    let input_words =
      Array.init n_in (fun _ -> Nano_util.Prng.bits64 rng)
    in
    Nano_sim.Bitsim.eval_words_into netlist ~input_words ~values:golden;
    for faulty = 0 to n - 1 do
      eval_with_flip netlist ~input_words ~values:faulty_values ~faulty;
      let diff = ref 0L in
      List.iter
        (fun (_, node) ->
          diff :=
            Int64.logor !diff (Int64.logxor golden.(node) faulty_values.(node)))
        outputs;
      hits.(faulty) <- hits.(faulty) + Nano_util.Bits.popcount64 !diff
    done
  done;
  let total = float_of_int (words * 64) in
  {
    observability = Array.map (fun h -> float_of_int h /. total) hits;
    vectors = words * 64;
  }

let is_logic_gate netlist id =
  match (Netlist.info netlist id).Netlist.kind with
  | Gate.Input | Gate.Const _ | Gate.Buf -> false
  | Gate.Not | Gate.And | Gate.Or | Gate.Nand | Gate.Nor | Gate.Xor
  | Gate.Xnor | Gate.Majority -> true

let ranked_gates netlist result =
  let gates =
    Netlist.fold netlist ~init:[] ~f:(fun acc id _ ->
        if is_logic_gate netlist id then id :: acc else acc)
  in
  List.sort
    (fun a b ->
      match compare result.observability.(b) result.observability.(a) with
      | 0 -> compare a b
      | c -> c)
    gates

let top_fraction netlist result ~fraction =
  if not (fraction >= 0. && fraction <= 1.) then
    invalid_arg "Criticality.top_fraction: fraction in [0, 1]";
  let ranked = ranked_gates netlist result in
  let count =
    int_of_float (ceil (fraction *. float_of_int (List.length ranked)))
  in
  List.filteri (fun i _ -> i < count) ranked
