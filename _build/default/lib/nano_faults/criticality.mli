(** Gate criticality (fault observability): how likely a single flip at
    a gate's output is to corrupt some primary output.

    This identifies where redundancy actually buys reliability — the
    ranking consumed by [Nano_redundancy.Selective]'s targeted hardening
    and a practical complement to the paper's global bounds. *)

type result = {
  observability : float array;
      (** Per node id: fraction of random input vectors on which
          flipping that node's value changes at least one primary
          output. Sources and buffers are reported too (a flipped input
          is not a gate fault, but the number is still meaningful). *)
  vectors : int;
}

val analyze : ?seed:int -> ?vectors:int -> Nano_netlist.Netlist.t -> result
(** Bit-parallel single-fault injection: one simulation pass per node,
    64 vectors per word ([vectors] defaults to 1024, rounded up). *)

val ranked_gates : Nano_netlist.Netlist.t -> result -> Nano_netlist.Netlist.node list
(** Logic-gate ids sorted by decreasing observability (ties broken by
    id); sources and buffers excluded. *)

val top_fraction :
  Nano_netlist.Netlist.t -> result -> fraction:float ->
  Nano_netlist.Netlist.node list
(** The most critical [ceil (fraction * gate count)] gates. Requires
    [0 <= fraction <= 1]. *)
