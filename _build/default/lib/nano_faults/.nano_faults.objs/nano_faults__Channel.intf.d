lib/nano_faults/channel.mli: Nano_util
