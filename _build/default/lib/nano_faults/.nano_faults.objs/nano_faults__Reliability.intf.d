lib/nano_faults/reliability.mli: Nano_netlist
