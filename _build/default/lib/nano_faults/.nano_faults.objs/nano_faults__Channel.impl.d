lib/nano_faults/channel.ml: Nano_util
