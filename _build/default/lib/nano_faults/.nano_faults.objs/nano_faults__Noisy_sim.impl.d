lib/nano_faults/noisy_sim.ml: Array Channel Int64 List Nano_netlist Nano_sim Nano_util
