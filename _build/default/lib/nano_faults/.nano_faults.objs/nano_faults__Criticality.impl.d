lib/nano_faults/criticality.ml: Array Int64 List Nano_netlist Nano_sim Nano_util
