lib/nano_faults/criticality.mli: Nano_netlist
