lib/nano_faults/reliability.ml: Array Float List Nano_netlist
