lib/nano_faults/noisy_sim.mli: Nano_netlist
