type t = { epsilon : float }

let create ~epsilon =
  if not (epsilon >= 0. && epsilon <= 0.5) then
    invalid_arg "Channel.create: epsilon must lie in [0, 1/2]";
  { epsilon }

let epsilon t = t.epsilon

let transfer_probability t p =
  (p *. (1. -. t.epsilon)) +. ((1. -. p) *. t.epsilon)

let transfer_activity t sw =
  let x = 1. -. (2. *. t.epsilon) in
  (x *. x *. sw) +. (2. *. t.epsilon *. (1. -. t.epsilon))

let compose a b =
  { epsilon = (a.epsilon *. (1. -. b.epsilon)) +. (b.epsilon *. (1. -. a.epsilon)) }

let apply_bit t rng bit =
  if Nano_util.Prng.bernoulli rng ~p:t.epsilon then not bit else bit

let noise_word t rng = Nano_util.Prng.word_with_density rng ~p:t.epsilon

let capacity t = 1. -. Nano_util.Math_ext.binary_entropy t.epsilon
