(** Binary symmetric channel: the paper's device error model (Figure 1).

    A failure-prone device is an error-free device cascaded with a
    symmetric channel that flips its output with probability ε,
    [0 <= ε <= 1/2]. *)

type t
(** An ε-channel. *)

val create : epsilon:float -> t
(** Raises [Invalid_argument] unless [0. <= epsilon <= 0.5]. *)

val epsilon : t -> float

val transfer_probability : t -> float -> float
(** [transfer_probability c p] is the probability that the channel output
    is one when the input is one with probability [p]:
    [p (1-ε) + (1-p) ε]. *)

val transfer_activity : t -> float -> float
(** Theorem 1's switching-activity map:
    [sw' = (1-2ε)^2 sw + 2ε(1-ε)]. Consistent with
    {!transfer_probability} under the temporal-independence model
    [sw = 2p(1-p)]. *)

val compose : t -> t -> t
(** Cascade of two symmetric channels is a symmetric channel:
    [ε = ε1 (1-ε2) + ε2 (1-ε1)]. *)

val apply_bit : t -> Nano_util.Prng.t -> bool -> bool
(** Send one bit through the channel using the given randomness. *)

val noise_word : t -> Nano_util.Prng.t -> int64
(** 64 independent channel-flip decisions as a mask (1 = flip). *)

val capacity : t -> float
(** Shannon capacity of the channel, [1 - H(ε)] bits; 0 at ε = 1/2. The
    information-theoretic quantity underlying the depth bound
    (Evans–Schulman signal decay). *)
