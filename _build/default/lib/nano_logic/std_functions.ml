let popcount_assignment a arity =
  let count = ref 0 in
  for i = 0 to arity - 1 do
    if (a lsr i) land 1 = 1 then incr count
  done;
  !count

let parity ~arity =
  Truth_table.create ~arity (fun a -> popcount_assignment a arity land 1 = 1)

let majority ~arity =
  assert (arity land 1 = 1);
  Truth_table.create ~arity (fun a -> popcount_assignment a arity > arity / 2)

let and_all ~arity =
  Truth_table.create ~arity (fun a -> popcount_assignment a arity = arity)

let or_all ~arity =
  Truth_table.create ~arity (fun a -> popcount_assignment a arity > 0)

let mux ~select_bits =
  assert (select_bits >= 1);
  let data = 1 lsl select_bits in
  let arity = select_bits + data in
  Truth_table.create ~arity (fun a ->
      let sel = a land ((1 lsl select_bits) - 1) in
      let chosen = select_bits + sel in
      (a lsr chosen) land 1 = 1)

let operands ~width a =
  let mask = (1 lsl width) - 1 in
  (a land mask, (a lsr width) land mask)

let adder_sum_bit ~width ~bit =
  assert (bit >= 0 && bit < width);
  assert (2 * width <= 20);
  Truth_table.create ~arity:(2 * width) (fun a ->
      let x, y = operands ~width a in
      ((x + y) lsr bit) land 1 = 1)

let adder_carry_out ~width =
  assert (2 * width <= 20);
  Truth_table.create ~arity:(2 * width) (fun a ->
      let x, y = operands ~width a in
      x + y >= 1 lsl width)

let comparator_greater ~width =
  assert (2 * width <= 20);
  Truth_table.create ~arity:(2 * width) (fun a ->
      let x, y = operands ~width a in
      x > y)

let threshold ~arity ~k =
  Truth_table.create ~arity (fun a -> popcount_assignment a arity >= k)
