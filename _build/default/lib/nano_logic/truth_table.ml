module Vec = Nano_util.Bits.Vec

type t = { arity : int; table : Vec.t }

let arity t = t.arity
let size_of_arity arity = 1 lsl arity

let create ~arity f =
  assert (arity >= 0 && arity <= 24);
  let table = Vec.create (size_of_arity arity) in
  for a = 0 to size_of_arity arity - 1 do
    if f a then Vec.set table a true
  done;
  { arity; table }

let const ~arity b =
  let table = Vec.create (size_of_arity arity) in
  Vec.fill table b;
  { arity; table }

let var ~arity i =
  assert (i >= 0 && i < arity);
  create ~arity (fun a -> (a lsr i) land 1 = 1)

let eval t a =
  assert (a >= 0 && a < size_of_arity t.arity);
  Vec.get t.table a

let eval_bits t bits =
  assert (Array.length bits = t.arity);
  let a = ref 0 in
  Array.iteri (fun i b -> if b then a := !a lor (1 lsl i)) bits;
  eval t !a

let map2 f a b =
  assert (a.arity = b.arity);
  let table = Vec.create (size_of_arity a.arity) in
  Vec.map2_into ~dst:table f a.table b.table;
  { arity = a.arity; table }

let lnot t =
  let table = Vec.create (size_of_arity t.arity) in
  Vec.map2_into ~dst:table (fun w _ -> Int64.lognot w) t.table t.table;
  { arity = t.arity; table }

let ( &&& ) = map2 Int64.logand
let ( ||| ) = map2 Int64.logor
let ( ^^^ ) = map2 Int64.logxor

let equal a b = a.arity = b.arity && Vec.equal a.table b.table
let ones t = Vec.popcount t.table

let signal_probability t =
  float_of_int (ones t) /. float_of_int (size_of_arity t.arity)

let switching_activity t =
  let p = signal_probability t in
  2. *. p *. (1. -. p)

let cofactor t ~var b =
  assert (var >= 0 && var < t.arity);
  let mask = 1 lsl var in
  create ~arity:t.arity (fun a ->
      let a' = if b then a lor mask else a land Stdlib.lnot mask in
      eval t a')

let depends_on t i =
  assert (i >= 0 && i < t.arity);
  let mask = 1 lsl i in
  let n = size_of_arity t.arity in
  let rec go a =
    if a >= n then false
    else if a land mask = 0 && eval t a <> eval t (a lor mask) then true
    else go (a + 1)
  in
  go 0

let support t = List.filter (depends_on t) (List.init t.arity (fun i -> i))

let sensitivity_at t a =
  let v = eval t a in
  let count = ref 0 in
  for i = 0 to t.arity - 1 do
    if eval t (a lxor (1 lsl i)) <> v then incr count
  done;
  !count

let sensitivity t =
  let best = ref 0 in
  for a = 0 to size_of_arity t.arity - 1 do
    let s = sensitivity_at t a in
    if s > !best then best := s
  done;
  !best

let average_sensitivity t =
  let total = ref 0 in
  let n = size_of_arity t.arity in
  for a = 0 to n - 1 do
    total := !total + sensitivity_at t a
  done;
  float_of_int !total /. float_of_int n

let minterms t =
  let acc = ref [] in
  for a = size_of_arity t.arity - 1 downto 0 do
    if eval t a then acc := a :: !acc
  done;
  !acc

let to_string t = Vec.to_string t.table

let of_string ~arity s =
  if String.length s <> size_of_arity arity then
    invalid_arg "Truth_table.of_string: wrong length";
  { arity; table = Vec.of_string s }
