(** Cubes (products of literals) and covers (sums of cubes) over a fixed
    set of variables; the representation used by the two-level minimizer
    and the BLIF [.names] bodies. *)

type literal = Zero | One | Dont_care

type t
(** A cube: one {!literal} per variable. *)

val arity : t -> int
val make : literal array -> t
(** Takes ownership of a defensive copy of the array. *)

val literal : t -> int -> literal
val universe : arity:int -> t
(** The cube with every position [Dont_care] (covers everything). *)

val of_minterm : arity:int -> int -> t
(** Fully specified cube for one assignment (encoded as in
    {!Truth_table}). *)

val covers : t -> int -> bool
(** [covers c assignment] holds when the assignment lies inside the
    cube. *)

val contains : t -> t -> bool
(** [contains a b] holds when every assignment of [b] is in [a]. *)

val intersects : t -> t -> bool
val merge_distance1 : t -> t -> t option
(** Quine–McCluskey combining step: if the cubes differ in exactly one
    position where one is [Zero] and the other [One] (all other positions
    equal), return the merged cube with a [Dont_care] there. *)

val literal_count : t -> int
(** Number of non-[Dont_care] positions. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
(** PLA-style string, e.g. ["1-0"]. *)

val of_string : string -> t
(** Accepts ['0'], ['1'], ['-']. *)

(** Covers: lists of cubes interpreted as a disjunction. *)
module Cover : sig
  type cube = t
  type t = cube list

  val eval : t -> int -> bool
  val to_truth_table : arity:int -> t -> Truth_table.t
  val of_truth_table : Truth_table.t -> t
  (** One fully specified cube per minterm (unminimized). *)

  val cube_count : t -> int
  val literal_count : t -> int
  val equivalent : arity:int -> t -> t -> bool
end
