type literal = Zero | One | Dont_care

type t = literal array

let arity = Array.length
let make lits = Array.copy lits
let literal c i = c.(i)
let universe ~arity = Array.make arity Dont_care

let of_minterm ~arity m =
  Array.init arity (fun i -> if (m lsr i) land 1 = 1 then One else Zero)

let covers c a =
  let ok = ref true in
  Array.iteri
    (fun i lit ->
      let bit = (a lsr i) land 1 = 1 in
      match lit with
      | Dont_care -> ()
      | One -> if not bit then ok := false
      | Zero -> if bit then ok := false)
    c;
  !ok

let contains a b =
  assert (arity a = arity b);
  let ok = ref true in
  Array.iteri
    (fun i lit ->
      match lit, b.(i) with
      | Dont_care, _ -> ()
      | One, One | Zero, Zero -> ()
      | One, (Zero | Dont_care) | Zero, (One | Dont_care) -> ok := false)
    a;
  !ok

let intersects a b =
  assert (arity a = arity b);
  let ok = ref true in
  Array.iteri
    (fun i lit ->
      match lit, b.(i) with
      | One, Zero | Zero, One -> ok := false
      | One, (One | Dont_care)
      | Zero, (Zero | Dont_care)
      | Dont_care, (Zero | One | Dont_care) -> ())
    a;
  !ok

let merge_distance1 a b =
  assert (arity a = arity b);
  let diff = ref 0 in
  let pos = ref (-1) in
  let incompatible = ref false in
  Array.iteri
    (fun i lit ->
      match lit, b.(i) with
      | One, One | Zero, Zero | Dont_care, Dont_care -> ()
      | One, Zero | Zero, One ->
        incr diff;
        pos := i
      | One, Dont_care | Zero, Dont_care | Dont_care, One | Dont_care, Zero ->
        incompatible := true)
    a;
  if !incompatible || !diff <> 1 then None
  else begin
    let merged = Array.copy a in
    merged.(!pos) <- Dont_care;
    Some merged
  end

let literal_count c =
  Array.fold_left
    (fun acc lit -> match lit with Dont_care -> acc | Zero | One -> acc + 1)
    0 c

let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b

let to_string c =
  String.init (arity c) (fun i ->
      match c.(i) with Zero -> '0' | One -> '1' | Dont_care -> '-')

let of_string s =
  Array.init (String.length s) (fun i ->
      match s.[i] with
      | '0' -> Zero
      | '1' -> One
      | '-' -> Dont_care
      | _ -> invalid_arg "Cube.of_string: expected '0', '1' or '-'")

module Cover = struct
  type cube = t
  type nonrec t = t list

  let eval cover a = List.exists (fun c -> covers c a) cover

  let to_truth_table ~arity cover =
    Truth_table.create ~arity (fun a -> eval cover a)

  let of_truth_table tt =
    List.map (of_minterm ~arity:(Truth_table.arity tt)) (Truth_table.minterms tt)

  let cube_count = List.length

  let literal_count cover =
    List.fold_left (fun acc c -> acc + literal_count c) 0 cover

  let equivalent ~arity a b =
    Truth_table.equal (to_truth_table ~arity a) (to_truth_table ~arity b)
end
