(** Reference Boolean functions used by tests, examples and the paper's
    canonical workloads (parity is the family for which every bound is
    tight). *)

val parity : arity:int -> Truth_table.t
(** XOR of all inputs; sensitivity equals [arity]. *)

val majority : arity:int -> Truth_table.t
(** One when more than half of the inputs are one. Requires odd
    [arity]. *)

val and_all : arity:int -> Truth_table.t
val or_all : arity:int -> Truth_table.t

val mux : select_bits:int -> Truth_table.t
(** [mux ~select_bits] has [select_bits + 2^select_bits] inputs: selects
    [0 .. select_bits-1] pick one of the remaining data inputs. *)

val adder_sum_bit : width:int -> bit:int -> Truth_table.t
(** Bit [bit] of the sum of two [width]-bit unsigned operands (inputs:
    operand a = inputs [0..width-1], operand b = inputs
    [width..2*width-1]). Requires [0 <= bit < width] and small widths
    ([2*width <= 20]). *)

val adder_carry_out : width:int -> Truth_table.t
(** Carry out of the same addition. *)

val comparator_greater : width:int -> Truth_table.t
(** One when operand a exceeds operand b (same input layout as
    {!adder_sum_bit}). *)

val threshold : arity:int -> k:int -> Truth_table.t
(** One when at least [k] inputs are one. *)
