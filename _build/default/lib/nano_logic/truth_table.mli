(** Boolean functions of a small number of inputs represented as packed
    truth tables.

    Input assignments are encoded as integers: input [i]'s value is bit
    [i] of the assignment index. Practical up to roughly 20 inputs
    (2^20-bit tables); circuit-sized functions should use
    {!Nano_bdd.Bdd} instead. *)

type t

val arity : t -> int
(** Number of inputs. *)

val create : arity:int -> (int -> bool) -> t
(** [create ~arity f] tabulates [f] over all [2^arity] assignments.
    Requires [0 <= arity <= 24]. *)

val const : arity:int -> bool -> t
val var : arity:int -> int -> t
(** [var ~arity i] is the projection on input [i]. Requires
    [0 <= i < arity]. *)

val eval : t -> int -> bool
(** [eval f assignment] looks up the output for the encoded assignment.
    Requires [0 <= assignment < 2^(arity f)]. *)

val eval_bits : t -> bool array -> bool
(** [eval_bits f bits] evaluates with [bits.(i)] the value of input [i].
    Requires [Array.length bits = arity f]. *)

val lnot : t -> t
val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t
val ( ^^^ ) : t -> t -> t
(** Pointwise complement / conjunction / disjunction / exclusive-or. The
    binary operators require equal arities. *)

val equal : t -> t -> bool
val ones : t -> int
(** Number of satisfying assignments. *)

val signal_probability : t -> float
(** Probability of output one under uniformly random inputs:
    [ones f / 2^arity]. *)

val switching_activity : t -> float
(** Probability that the output differs on two independent uniform input
    draws: [2 p (1 - p)] with [p = signal_probability f]. This is the
    temporal-independence activity model used throughout the paper. *)

val cofactor : t -> var:int -> bool -> t
(** [cofactor f ~var b] fixes input [var] to [b]; the result keeps the
    same arity (the fixed variable becomes irrelevant). *)

val depends_on : t -> int -> bool
(** Whether the function's value can change when the given input flips. *)

val support : t -> int list
(** Inputs the function actually depends on, in increasing order. *)

val sensitivity_at : t -> int -> int
(** [sensitivity_at f assignment] counts inputs whose individual flip
    changes the output at the given assignment. *)

val sensitivity : t -> int
(** Boolean sensitivity: maximum of {!sensitivity_at} over all
    assignments. For an n-input parity this is [n]. *)

val average_sensitivity : t -> float
(** Mean of {!sensitivity_at} over all assignments (total influence). *)

val minterms : t -> int list
(** Assignments mapped to one, in increasing order. *)

val to_string : t -> string
(** Output column as a ['0']/['1'] string, assignment 0 first. *)

val of_string : arity:int -> string -> t
(** Inverse of {!to_string}. Requires the string length to be
    [2^arity]. *)
