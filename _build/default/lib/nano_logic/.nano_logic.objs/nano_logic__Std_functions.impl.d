lib/nano_logic/std_functions.ml: Truth_table
