lib/nano_logic/truth_table.ml: Array Int64 List Nano_util Stdlib String
