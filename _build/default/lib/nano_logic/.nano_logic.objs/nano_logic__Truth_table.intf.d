lib/nano_logic/truth_table.mli:
