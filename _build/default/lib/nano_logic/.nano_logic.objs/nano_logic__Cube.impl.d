lib/nano_logic/cube.ml: Array List Stdlib String Truth_table
