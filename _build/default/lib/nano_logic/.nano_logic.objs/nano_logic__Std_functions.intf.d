lib/nano_logic/std_functions.mli: Truth_table
