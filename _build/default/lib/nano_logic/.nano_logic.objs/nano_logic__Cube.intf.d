lib/nano_logic/cube.mli: Truth_table
