module Netlist = Nano_netlist.Netlist
module Gate = Nano_netlist.Gate

type profile = {
  node_transitions : float array;
  node_settled_toggles : float array;
  average_gate_transitions : float;
  average_gate_settled : float;
  glitch_factor : float;
  pairs : int;
}

let is_counted info =
  match info.Netlist.kind with
  | Gate.Input | Gate.Const _ | Gate.Buf -> false
  | Gate.Not | Gate.And | Gate.Or | Gate.Nand | Gate.Nor | Gate.Xor
  | Gate.Xnor | Gate.Majority -> true

(* One synchronous unit-delay step: every gate reads its fanins'
   previous values. Inputs hold the new vector. *)
let step netlist ~prev ~next =
  Netlist.iter netlist (fun id info ->
      match info.Netlist.kind with
      | Gate.Input -> next.(id) <- prev.(id)
      | kind ->
        let words = Array.map (fun f -> prev.(f)) info.Netlist.fanins in
        next.(id) <- Gate.eval_word kind words)

let unit_delay ?(seed = 0x911c) ?(pairs = 2048) ?(input_probability = 0.5)
    netlist =
  let rng = Nano_util.Prng.create ~seed in
  let words = Nano_util.Math_ext.ceil_div pairs 64 in
  let n = Netlist.node_count netlist in
  let n_in = List.length (Netlist.inputs netlist) in
  let depth = Netlist.depth netlist in
  let transitions = Array.make n 0 in
  let settled_toggles = Array.make n 0 in
  let old_values = Array.make n 0L in
  let new_values = Array.make n 0L in
  let prev = Array.make n 0L in
  let next = Array.make n 0L in
  for _ = 1 to words do
    let draw () =
      Array.init n_in (fun _ ->
          Nano_util.Prng.word_with_density rng ~p:input_probability)
    in
    let vec_a = draw () in
    let vec_b = draw () in
    Bitsim.eval_words_into netlist ~input_words:vec_a ~values:old_values;
    Bitsim.eval_words_into netlist ~input_words:vec_b ~values:new_values;
    for id = 0 to n - 1 do
      settled_toggles.(id) <-
        settled_toggles.(id)
        + Nano_util.Bits.popcount64 (Int64.logxor old_values.(id) new_values.(id))
    done;
    (* Wave propagation: start settled at A, inputs snap to B. *)
    Array.blit old_values 0 prev 0 n;
    List.iteri (fun i id -> prev.(id) <- vec_b.(i)) (Netlist.inputs netlist);
    for id = 0 to n - 1 do
      transitions.(id) <-
        transitions.(id)
        + Nano_util.Bits.popcount64 (Int64.logxor prev.(id) old_values.(id))
    done;
    for _t = 1 to depth do
      step netlist ~prev ~next;
      for id = 0 to n - 1 do
        transitions.(id) <-
          transitions.(id)
          + Nano_util.Bits.popcount64 (Int64.logxor next.(id) prev.(id))
      done;
      Array.blit next 0 prev 0 n
    done
  done;
  let total = float_of_int (words * 64) in
  let node_transitions = Array.map (fun c -> float_of_int c /. total) transitions in
  let node_settled_toggles =
    Array.map (fun c -> float_of_int c /. total) settled_toggles
  in
  let average per_node =
    let sum, count =
      Netlist.fold netlist ~init:(0., 0) ~f:(fun (s, c) id info ->
          if is_counted info then (s +. per_node.(id), c + 1) else (s, c))
    in
    if count = 0 then 0. else sum /. float_of_int count
  in
  let average_gate_transitions = average node_transitions in
  let average_gate_settled = average node_settled_toggles in
  {
    node_transitions;
    node_settled_toggles;
    average_gate_transitions;
    average_gate_settled;
    glitch_factor =
      (if average_gate_settled = 0. then 1.
       else average_gate_transitions /. average_gate_settled);
    pairs = words * 64;
  }
