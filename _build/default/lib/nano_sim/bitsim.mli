(** 64-way bit-parallel functional simulation of netlists: every [int64]
    word carries 64 independent input vectors through the circuit at
    once. *)

val eval_words : Nano_netlist.Netlist.t -> int64 array -> int64 array
(** [eval_words netlist input_words] simulates 64 vectors. The array
    gives one word per primary input (declaration order); the result has
    one word per node id. *)

val eval_words_into :
  Nano_netlist.Netlist.t -> input_words:int64 array -> values:int64 array -> unit
(** Allocation-free variant: [values] must have [node_count] entries and
    is overwritten. *)

val random_input_words :
  Nano_util.Prng.t -> input_probability:float -> count:int -> int64 array
(** [count] words, each bit one with the given probability. *)

val output_word : Nano_netlist.Netlist.t -> int64 array -> string -> int64
(** Extract the word of a named primary output from an
    {!eval_words} result. Raises [Not_found] for unknown output names. *)
