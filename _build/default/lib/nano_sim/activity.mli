(** Signal-probability and switching-activity estimation.

    The paper's activity model is temporal independence:
    [sw(x) = 2 p(x) (1 - p(x))] where [p(x)] is the signal probability
    (Theorem 1's proof hint). Two estimators are provided — Monte Carlo
    (bit-parallel random vectors) and exact (ROBDD signal probabilities) —
    plus a measured toggle-rate estimator that draws pairs of consecutive
    vectors, used to validate the model in tests. *)

type profile = {
  node_probability : float array;  (** Per node id, [Pr(node = 1)]. *)
  node_activity : float array;  (** Per node id, [2 p (1-p)]. *)
  average_gate_activity : float;
      (** Mean activity over logic gates (the paper's per-gate [sw0];
          sources and buffers excluded, matching [Netlist.size]). *)
  vectors : int;  (** Sample count (0 for the exact estimator). *)
}

val monte_carlo :
  ?seed:int ->
  ?vectors:int ->
  ?input_probability:float ->
  Nano_netlist.Netlist.t ->
  profile
(** Bit-parallel sampling estimator. [vectors] (default 4096) is rounded
    up to a multiple of 64; [input_probability] defaults to 0.5. *)

val exact : ?input_probability:float -> Nano_netlist.Netlist.t -> profile
(** Exact signal probabilities via a ROBDD built over the primary inputs.
    Exponential in the worst case; intended for netlists up to a few
    hundred gates (our benchmark sizes). *)

val measured_toggle_rate :
  ?seed:int -> ?pairs:int -> ?input_probability:float ->
  Nano_netlist.Netlist.t -> float array
(** Empirical toggle probability per node between two independent random
    vectors; converges to [node_activity] under the independence model. *)

val average_over_gates : Nano_netlist.Netlist.t -> float array -> float
(** Mean of a per-node quantity over the logic gates counted by
    [Netlist.size]. *)
