module Netlist = Nano_netlist.Netlist

(* Bit-parallel flip evaluation: lane 0 carries the base assignment and
   lane j (1 <= j <= 63) the assignment with one input flipped, so one
   netlist evaluation measures up to 63 single-input flips. *)
let at_assignment netlist bits =
  let n = Array.length bits in
  let outputs = Netlist.outputs netlist in
  let values = Array.make (Netlist.node_count netlist) 0L in
  let changed = Array.make n false in
  let chunk_start = ref 0 in
  while !chunk_start < n do
    let flips = min 63 (n - !chunk_start) in
    let input_words =
      Array.init n (fun i ->
          let base = if bits.(i) then -1L else 0L in
          let local = i - !chunk_start in
          if local >= 0 && local < flips then
            (* Flip this input in its dedicated lane (local + 1). *)
            Int64.logxor base (Int64.shift_left 1L (local + 1))
          else base)
    in
    Bitsim.eval_words_into netlist ~input_words ~values;
    (* A lane differs from lane 0 when some output bit differs. *)
    let diff = ref 0L in
    List.iter
      (fun (_, node) ->
        let w = values.(node) in
        let base_bit = Int64.logand w 1L in
        (* Spread lane 0's bit across all lanes and XOR. *)
        let spread = Int64.neg base_bit (* 0 -> 0L, 1 -> all ones *) in
        diff := Int64.logor !diff (Int64.logxor w spread))
      outputs;
    for j = 0 to flips - 1 do
      if Nano_util.Bits.get !diff (j + 1) then
        changed.(!chunk_start + j) <- true
    done;
    chunk_start := !chunk_start + flips
  done;
  Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 changed

let exact ?(max_inputs = 12) netlist =
  let n = List.length (Netlist.inputs netlist) in
  if n > max_inputs then None
  else begin
    let bits = Array.make n false in
    let best = ref 0 in
    for a = 0 to (1 lsl n) - 1 do
      for i = 0 to n - 1 do
        bits.(i) <- (a lsr i) land 1 = 1
      done;
      let s = at_assignment netlist bits in
      if s > !best then best := s
    done;
    Some !best
  end

let sampled ?(seed = 0x5e15) ?(samples = 2048) netlist =
  let rng = Nano_util.Prng.create ~seed in
  let n = List.length (Netlist.inputs netlist) in
  let bits = Array.make n false in
  let best = ref 0 in
  for _ = 1 to samples do
    for i = 0 to n - 1 do
      bits.(i) <- Nano_util.Prng.bool rng
    done;
    let s = at_assignment netlist bits in
    if s > !best then best := s
  done;
  !best

let estimate ?seed ?samples netlist =
  match exact netlist with
  | Some s -> s
  | None -> sampled ?seed ?samples netlist
