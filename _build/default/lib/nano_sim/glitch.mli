(** Glitch-aware switching activity via unit-delay timing simulation.

    The paper's energy model (and {!Activity}) counts one transition per
    settled value change (zero-delay model). Real circuits also burn
    energy in hazards: when a gate's fanins change at different times it
    can toggle several times before settling. This module replays input
    changes through a unit-delay model and counts {e every} transition,
    yielding the glitch multiplier that inflates switching energy on
    unbalanced logic — one more reason the balance pass pays off. *)

type profile = {
  node_transitions : float array;
      (** Per node id: mean transitions per applied input change
          (unit-delay). *)
  node_settled_toggles : float array;
      (** Per node id: mean settled (zero-delay) toggles — the
          {!Activity} notion, measured on the same vector pairs. *)
  average_gate_transitions : float;
  average_gate_settled : float;
  glitch_factor : float;
      (** [average_gate_transitions / average_gate_settled]; 1.0 means
          hazard-free, larger means glitch energy. 1.0 when the
          denominator is 0. *)
  pairs : int;
}

val unit_delay :
  ?seed:int -> ?pairs:int -> ?input_probability:float ->
  Nano_netlist.Netlist.t -> profile
(** Simulate [pairs] (default 2048, rounded up to multiples of 64)
    random vector changes. All internal nodes start settled on the old
    vector; inputs step to the new vector at time 0 and every gate
    updates one time unit after its fanins. *)
