module Netlist = Nano_netlist.Netlist
module Gate = Nano_netlist.Gate

let eval_words_into netlist ~input_words ~values =
  let n_in = List.length (Netlist.inputs netlist) in
  if Array.length input_words <> n_in then
    invalid_arg "Bitsim.eval_words_into: wrong number of input words";
  if Array.length values <> Netlist.node_count netlist then
    invalid_arg "Bitsim.eval_words_into: wrong values length";
  List.iteri (fun i id -> values.(id) <- input_words.(i)) (Netlist.inputs netlist);
  Netlist.iter netlist (fun id info ->
      match info.Netlist.kind with
      | Gate.Input -> ()
      | kind ->
        let words = Array.map (fun f -> values.(f)) info.Netlist.fanins in
        values.(id) <- Gate.eval_word kind words)

let eval_words netlist input_words =
  let values = Array.make (Netlist.node_count netlist) 0L in
  eval_words_into netlist ~input_words ~values;
  values

let random_input_words rng ~input_probability ~count =
  Array.init count (fun _ ->
      Nano_util.Prng.word_with_density rng ~p:input_probability)

let output_word netlist values name =
  let node = List.assoc name (Netlist.outputs netlist) in
  values.(node)
