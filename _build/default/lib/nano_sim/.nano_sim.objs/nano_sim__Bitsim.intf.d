lib/nano_sim/bitsim.mli: Nano_netlist Nano_util
