lib/nano_sim/glitch.mli: Nano_netlist
