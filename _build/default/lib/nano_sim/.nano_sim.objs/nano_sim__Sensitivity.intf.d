lib/nano_sim/sensitivity.mli: Nano_netlist
