lib/nano_sim/activity.mli: Nano_netlist
