lib/nano_sim/activity.ml: Array Bitsim Hashtbl Int64 List Nano_bdd Nano_netlist Nano_util
