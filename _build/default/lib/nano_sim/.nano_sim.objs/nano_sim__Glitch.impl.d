lib/nano_sim/glitch.ml: Array Bitsim Int64 List Nano_netlist Nano_util
