lib/nano_sim/sensitivity.ml: Array Bitsim Int64 List Nano_netlist Nano_util
