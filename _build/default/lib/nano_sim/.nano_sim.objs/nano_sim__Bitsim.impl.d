lib/nano_sim/bitsim.ml: Array List Nano_netlist Nano_util
