(** Boolean sensitivity of netlist functions.

    The sensitivity [s] of a function is the largest, over input
    assignments, number of inputs whose individual flip changes some
    output — the parameter driving Theorem 2's redundancy bound. For a
    multi-output circuit we use the characteristic-function convention of
    Corollary 1: an input flip "counts" when any output changes. *)

val at_assignment : Nano_netlist.Netlist.t -> bool array -> int
(** Sensitivity at one input assignment (number of single-input flips
    that change the output word). *)

val exact : ?max_inputs:int -> Nano_netlist.Netlist.t -> int option
(** Exhaustive maximum over all [2^n] assignments; [None] when the
    netlist has more than [max_inputs] (default 12) primary inputs. *)

val sampled :
  ?seed:int -> ?samples:int -> Nano_netlist.Netlist.t -> int
(** Monte-Carlo lower estimate: maximum of {!at_assignment} over
    [samples] (default 2048) random assignments. Always a valid lower
    bound on the true sensitivity, which keeps Theorem 2's bound sound. *)

val estimate : ?seed:int -> ?samples:int -> Nano_netlist.Netlist.t -> int
(** {!exact} when feasible, otherwise {!sampled}. *)
