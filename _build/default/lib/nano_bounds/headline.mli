(** The paper's headline claim: "99% error resilience is possible for
    fault-tolerant designs, but at the expense of at least 40% more
    energy if individual gates fail independently with probability of
    1%". *)

type verdict = {
  epsilon : float;  (** 0.01 *)
  delta : float;  (** 0.01 — i.e. 99% resilience. *)
  min_overhead : float;  (** Smallest per-benchmark energy overhead. *)
  max_overhead : float;
  mean_overhead : float;
  per_benchmark : (string * float) list;
  holds : bool;
      (** [max_overhead >= 0.40] — the paper's Section 6 phrasing is
          "necessitating in some cases at least 40% more energy", i.e.
          the overhead is reached by at least one benchmark. *)
}

val check : ?threshold:float -> Profile.t list -> verdict
(** Evaluate every profile at ε = δ = 0.01 with the 50% leakage baseline
    and compare the largest energy overhead against [threshold]
    (default 0.40). Requires a non-empty list. *)
