let ratio_change ~epsilon ~sw0 =
  if not (epsilon >= 0. && epsilon <= 0.5) then
    invalid_arg "Leakage.ratio_change: epsilon must lie in [0, 1/2]";
  if not (sw0 > 0. && sw0 < 1.) then
    invalid_arg "Leakage.ratio_change: sw0 must lie in (0, 1)";
  let c = (1. -. (2. *. epsilon)) ** 2. in
  let noise = 2. *. epsilon *. (1. -. epsilon) in
  (c +. (noise /. (1. -. sw0))) /. (c +. (noise /. sw0))

let noisy_ratio ~epsilon ~sw0 ~w0 =
  if w0 < 0. then invalid_arg "Leakage.noisy_ratio: w0 must be >= 0";
  w0 *. ratio_change ~epsilon ~sw0

let leakage_share ~w =
  if w < 0. then invalid_arg "Leakage.leakage_share: w must be >= 0";
  w /. (1. +. w)

let ratio_of_share share =
  if not (share >= 0. && share < 1.) then
    invalid_arg "Leakage.ratio_of_share: share must lie in [0, 1)";
  share /. (1. -. share)
