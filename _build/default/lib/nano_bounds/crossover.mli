(** Crossover and feasibility-frontier analysis on top of the bounds —
    the design-guidance queries a synthesis tool would ask (Section 1's
    motivation: "tools that can aid and guide the design process"). *)

val power_crossover : ?steps:int -> Metrics.scenario -> float option
(** Smallest ε (log-scanned with [steps] points, then refined by
    bisection) at which the average-power lower bound of the scenario
    drops below 1 — past it the fault-tolerant design is more
    power-efficient than the baseline, at the cost of latency. [None]
    when no crossover exists inside Theorem 4's feasible range. The
    scenario's own ε is ignored. *)

val max_epsilon_for_energy_budget :
  ?steps:int -> budget:float -> Metrics.scenario -> float option
(** Largest ε whose energy lower bound stays within [budget] (a ratio,
    e.g. 1.4 = "at most 40% more energy"). [None] when even the smallest
    scanned ε exceeds the budget. Uses monotonicity of the energy bound
    in ε (property-tested). Requires [budget >= 1]. *)

val min_delta_for_epsilon :
  ?steps:int -> budget:float -> epsilon:float -> Metrics.scenario ->
  float option
(** Tightest output-error requirement δ (smallest) achievable at the
    given ε without exceeding the energy [budget]. [None] when even the
    loosest δ < 1/2 busts the budget. *)

val feasibility_edge : fanin:int -> float
(** Alias for {!Metrics.feasible_epsilon_sup}: the ε beyond which
    Theorem 4's bounded branch no longer applies. *)
