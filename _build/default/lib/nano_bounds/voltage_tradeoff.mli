(** Section 5.2's supply-voltage compensation analysis.

    A fault-tolerant implementation switches more capacitance (Corollary
    2) and is deeper (Theorem 4). The designer can trade these against
    the supply voltage using the Chen–Hu delay model
    [D ∝ d · Vdd/(Vdd - VT)^α]:

    - {!iso_energy}: lower Vdd until the fault-tolerant design burns the
      same switching energy as the error-free baseline and report how
      much slower it then is;
    - {!iso_delay}: raise Vdd until it is as fast as the baseline and
      report how much more energy it then burns.

    Both directions quantify the paper's observation that voltage
    scaling cannot hide the redundancy cost — it only moves it between
    the energy and delay axes. The analysis is switching-dominated
    (leakage ignored), matching the paper's discussion. *)

type operating_point = {
  vdd : float;  (** Chosen supply. *)
  energy_ratio : float;  (** Fault-tolerant / baseline, at [vdd]. *)
  delay_ratio : float;  (** Fault-tolerant at [vdd] / baseline at nominal. *)
}

val nominal : tech:Nano_energy.Technology.t -> Metrics.scenario -> operating_point
(** Both designs at the technology's nominal supply: energy ratio from
    Corollary 2 (switching only), delay ratio from Theorem 4. Raises
    [Invalid_argument] for invalid scenarios or Theorem 4-infeasible
    ones. *)

val iso_energy :
  tech:Nano_energy.Technology.t -> Metrics.scenario -> operating_point option
(** Scale Vdd down so the fault-tolerant switching energy matches the
    baseline's ([energy_ratio = 1]); [None] when the required supply
    would not stay above the threshold voltage (the redundancy is too
    large to hide). *)

val iso_delay :
  ?vdd_max:float -> tech:Nano_energy.Technology.t -> Metrics.scenario ->
  operating_point option
(** Scale Vdd up so the fault-tolerant delay matches the baseline's
    ([delay_ratio = 1]); [None] when no supply up to [vdd_max] (default
    [3 * vdd]) is fast enough. *)

val chen_hu : tech:Nano_energy.Technology.t -> vdd:float -> float
(** Per-stage Chen–Hu delay at an arbitrary supply; exposed for tests.
    Requires [vdd > vt]. *)
