type operating_point = {
  vdd : float;
  energy_ratio : float;
  delay_ratio : float;
}

let chen_hu ~tech ~vdd =
  let vt = tech.Nano_energy.Technology.vt in
  if not (vdd > vt) then invalid_arg "Voltage_tradeoff.chen_hu: vdd <= vt";
  vdd /. ((vdd -. vt) ** tech.Nano_energy.Technology.alpha)

(* Switched-capacitance ratio (Corollary 2, switching part) and depth
   ratio (Theorem 4) of the scenario. *)
let ratios scenario =
  let b = Metrics.evaluate scenario in
  let chi = b.Metrics.switching_energy_ratio in
  match b.Metrics.delay_ratio with
  | Some rho -> (chi, rho)
  | None ->
    invalid_arg
      "Voltage_tradeoff: Theorem 4 rules out reliable computation here"

let nominal ~tech scenario =
  let chi, rho = ratios scenario in
  {
    vdd = tech.Nano_energy.Technology.vdd;
    energy_ratio = chi;
    delay_ratio = rho;
  }

let iso_energy ~tech scenario =
  let chi, rho = ratios scenario in
  let vdd0 = tech.Nano_energy.Technology.vdd in
  let vt = tech.Nano_energy.Technology.vt in
  (* chi * vdd'^2 = vdd0^2 *)
  let vdd' = vdd0 /. sqrt chi in
  if vdd' <= vt *. 1.001 then None
  else begin
    let delay_ratio =
      rho *. chen_hu ~tech ~vdd:vdd' /. chen_hu ~tech ~vdd:vdd0
    in
    Some { vdd = vdd'; energy_ratio = 1.; delay_ratio }
  end

let iso_delay ?vdd_max ~tech scenario =
  let chi, rho = ratios scenario in
  let vdd0 = tech.Nano_energy.Technology.vdd in
  let hi = match vdd_max with Some v -> v | None -> 3. *. vdd0 in
  let target = chen_hu ~tech ~vdd:vdd0 /. rho in
  (* chen_hu is strictly decreasing in vdd above ~vt/(alpha-1)-ish for
     alpha > 1 in the practical range; we rely on monotone decrease on
     [vdd0, hi] which holds for our technologies (checked in tests) and
     bisect. *)
  if chen_hu ~tech ~vdd:hi > target then None
  else begin
    let rec bisect lo hi i =
      if i = 0 then (lo +. hi) /. 2.
      else begin
        let mid = (lo +. hi) /. 2. in
        if chen_hu ~tech ~vdd:mid > target then bisect mid hi (i - 1)
        else bisect lo mid (i - 1)
      end
    in
    let vdd' = bisect vdd0 hi 60 in
    let energy_ratio = chi *. (vdd' /. vdd0) ** 2. in
    Some { vdd = vdd'; energy_ratio; delay_ratio = 1. }
  end
