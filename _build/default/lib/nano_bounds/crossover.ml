let feasibility_edge ~fanin = Metrics.feasible_epsilon_sup ~fanin

let power_ratio scenario epsilon =
  match (Metrics.evaluate { scenario with Metrics.epsilon }).Metrics.average_power_ratio with
  | Some p -> Some p
  | None -> None

let bisect ~f ~lo ~hi ~iterations =
  (* f lo = false, f hi = true; find the boundary. *)
  let rec go lo hi i =
    if i = 0 then (lo +. hi) /. 2.
    else begin
      let mid = (lo +. hi) /. 2. in
      if f mid then go lo mid (i - 1) else go mid hi (i - 1)
    end
  in
  go lo hi iterations

let power_crossover ?(steps = 200) scenario =
  let sup = feasibility_edge ~fanin:scenario.Metrics.fanin in
  let grid =
    Nano_util.Sweep.logarithmic ~lo:1e-5 ~hi:(sup *. 0.999) ~steps
  in
  let below epsilon =
    match power_ratio scenario epsilon with
    | Some p -> p < 1.
    | None -> false
  in
  (* Find the first grid point below 1 and bisect against its
     predecessor. *)
  let rec scan prev = function
    | [] -> None
    | e :: rest ->
      if below e then begin
        match prev with
        | None -> Some e
        | Some p -> Some (bisect ~f:below ~lo:p ~hi:e ~iterations:50)
      end
      else scan (Some e) rest
  in
  scan None grid

let max_epsilon_for_energy_budget ?(steps = 200) ~budget scenario =
  if budget < 1. then
    invalid_arg "Crossover.max_epsilon_for_energy_budget: budget >= 1";
  let over epsilon =
    (Metrics.evaluate { scenario with Metrics.epsilon }).Metrics.energy_ratio
    > budget
  in
  let grid = Nano_util.Sweep.logarithmic ~lo:1e-6 ~hi:0.4999 ~steps in
  match grid with
  | [] -> None
  | first :: _ ->
    if over first then None
    else begin
      (* last point within budget *)
      let rec scan last = function
        | [] -> Some last
        | e :: rest ->
          if over e then Some (bisect ~f:over ~lo:last ~hi:e ~iterations:50)
          else scan e rest
      in
      scan first (List.tl grid)
    end

let min_delta_for_epsilon ?(steps = 200) ~budget ~epsilon scenario =
  if budget < 1. then
    invalid_arg "Crossover.min_delta_for_epsilon: budget >= 1";
  let over delta =
    (Metrics.evaluate { scenario with Metrics.epsilon; delta })
      .Metrics.energy_ratio
    > budget
  in
  (* The bound grows as delta shrinks; scan delta downward. *)
  let grid =
    List.rev (Nano_util.Sweep.logarithmic ~lo:1e-9 ~hi:0.4999 ~steps)
  in
  match grid with
  | [] -> None
  | loosest :: rest ->
    if over loosest then None
    else begin
      let rec scan last = function
        | [] -> Some last
        | d :: more ->
          if over d then
            (* boundary between d (over) and last (within) *)
            Some (bisect ~f:(fun x -> not (over x)) ~lo:d ~hi:last ~iterations:50)
          else scan d more
      in
      scan loosest rest
    end
