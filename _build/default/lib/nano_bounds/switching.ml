let valid_epsilon e = e >= 0. && e <= 0.5

let check_epsilon e =
  if not (valid_epsilon e) then
    invalid_arg "Switching: epsilon must lie in [0, 1/2]"

let contraction_factor ~epsilon =
  check_epsilon epsilon;
  let x = 1. -. (2. *. epsilon) in
  x *. x

let noisy_activity ~epsilon sw =
  check_epsilon epsilon;
  if not (sw >= 0. && sw <= 1.) then
    invalid_arg "Switching.noisy_activity: sw must lie in [0, 1]";
  (contraction_factor ~epsilon *. sw) +. (2. *. epsilon *. (1. -. epsilon))

let noisy_probability ~epsilon p =
  check_epsilon epsilon;
  if not (p >= 0. && p <= 1.) then
    invalid_arg "Switching.noisy_probability: p must lie in [0, 1]";
  (p *. (1. -. epsilon)) +. ((1. -. p) *. epsilon)

let activity_of_probability p =
  if not (p >= 0. && p <= 1.) then
    invalid_arg "Switching.activity_of_probability: p must lie in [0, 1]";
  2. *. p *. (1. -. p)

let fixed_point = 0.5

let inverse ~epsilon sw_z =
  check_epsilon epsilon;
  let c = contraction_factor ~epsilon in
  if c = 0. then None
  else begin
    let sw_y = (sw_z -. (2. *. epsilon *. (1. -. epsilon))) /. c in
    if sw_y >= 0. && sw_y <= 1. then Some sw_y else None
  end
