(** Corollary 2 and the composite normalized metrics of Section 5.2
    (Figures 5–8): energy, delay, energy-delay product and average power
    of a fault-tolerant implementation, as ratios over the error-free
    baseline. *)

type scenario = {
  epsilon : float;  (** Per-gate error, (0, 1/2]. *)
  delta : float;  (** Output error budget, [0, 1/2). *)
  fanin : int;  (** Gate fanin k (or average fanin for benchmarks). *)
  sensitivity : int;  (** Boolean sensitivity s of the function. *)
  error_free_size : int;  (** S0, gates. *)
  inputs : int;  (** n, relevant primary inputs (drives Theorem 4). *)
  sw0 : float;  (** Error-free average per-gate activity, (0, 1). *)
  leakage_share0 : float;
      (** λ0 — fraction of baseline energy that is leakage, [0, 1). The
          paper's figures use 0.5. *)
}

val scenario_valid : scenario -> bool

type bounds = {
  size_ratio : float;  (** [S(ε,δ)/S0 >= 1] (Theorem 2 / Corollary 1). *)
  activity_ratio : float;  (** [sw(ε)/sw0] (Theorem 1). *)
  idle_ratio : float;  (** [(1-sw(ε))/(1-sw0)] — drives leakage. *)
  switching_energy_ratio : float;
      (** Corollary 2 proper: [size_ratio * activity_ratio]. *)
  energy_ratio : float;
      (** Total-energy bound including leakage:
          [size_ratio * ((1-λ0) * activity_ratio + λ0 * idle_ratio)]. *)
  leakage_ratio_change : float;  (** Theorem 3's normalized W ratio. *)
  delay_ratio : float option;
      (** Theorem 4 normalized depth bound; [None] when reliable
          computation is infeasible at these parameters. *)
  energy_delay_ratio : float option;  (** [energy_ratio * delay_ratio]. *)
  average_power_ratio : float option;  (** [energy_ratio / delay_ratio]. *)
}

val evaluate : scenario -> bounds
(** Raises [Invalid_argument] when {!scenario_valid} fails. *)

val feasible_epsilon_sup : fanin:int -> float
(** Supremum of ε for which Theorem 4's bounded branch applies:
    [(1 - k^(-1/2)) / 2]. Figures 5–6 sweep ε strictly below it. *)

val explain : scenario -> string
(** A step-by-step derivation of the bounds for the scenario: ω and t of
    Theorem 2, the additional-gate count, Theorem 1's activity shift,
    Corollary 2's factors, and Theorem 4's ξ²·k feasibility test —
    every intermediate the figures are built from, as printable text. *)

val headline_energy_overhead :
  epsilon:float -> delta:float -> scenario -> float
(** Energy overhead [(energy_ratio - 1)] of the scenario re-evaluated at
    the given (ε, δ); the paper's headline instantiates ε = δ = 0.01. *)
