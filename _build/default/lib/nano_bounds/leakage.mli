(** Theorem 3: how device noise shifts the leakage-to-switching energy
    ratio.

    With probability [1 - sw] a device is idle and leaks instead of
    switching; noise pushes every activity toward 1/2 (Theorem 1), so
    the leakage share drops when [sw0 < 1/2] and grows when
    [sw0 > 1/2]:

    {v W(ε)/W0 = ((1-2ε)^2 + 2ε(1-ε)/(1-sw0)) / ((1-2ε)^2 + 2ε(1-ε)/sw0) v} *)

val ratio_change : epsilon:float -> sw0:float -> float
(** The normalized ratio above (Figure 4's Y axis). Requires
    [0 <= ε <= 1/2] and [0 < sw0 < 1]. Equals 1 when [sw0 = 1/2] or
    [ε = 0]. *)

val noisy_ratio : epsilon:float -> sw0:float -> w0:float -> float
(** Absolute noisy leakage-to-switching ratio given the error-free ratio
    [w0 >= 0]: [w0 *. ratio_change ~epsilon ~sw0]. *)

val leakage_share : w:float -> float
(** Convert a leakage-to-switching ratio [w >= 0] into a fraction of
    total energy: [w / (1 + w)]. *)

val ratio_of_share : float -> float
(** Inverse of {!leakage_share}; requires the share in [[0, 1)]. *)
