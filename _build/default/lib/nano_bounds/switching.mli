(** Theorem 1: switching activity of ε-noisy devices.

    If [y] and [z] are the error-free and error-prone outputs of a device
    failing with probability ε, then
    [sw(z) = (1-2ε)^2 sw(y) + 2ε(1-ε)]. *)

val valid_epsilon : float -> bool
(** [0 <= ε <= 1/2]. *)

val noisy_activity : epsilon:float -> float -> float
(** [noisy_activity ~epsilon sw] is Theorem 1's [sw(z)]. Requires a valid
    ε and [0 <= sw <= 1]. *)

val noisy_probability : epsilon:float -> float -> float
(** Signal-probability counterpart [p' = p(1-ε) + (1-p)ε]. *)

val activity_of_probability : float -> float
(** Temporal-independence model: [sw = 2 p (1-p)]. *)

val fixed_point : float
(** The activity invariant under any noise level: [0.5]. Activities below
    it increase under noise, activities above it decrease. *)

val inverse : epsilon:float -> float -> float option
(** [inverse ~epsilon sw_z] recovers [sw(y)] from [sw(z)] when ε < 1/2;
    [None] at ε = 1/2 (the map is constant there) or when the recovered
    activity falls outside [[0, 1]] (meaning [sw_z] is not reachable). *)

val contraction_factor : epsilon:float -> float
(** [(1-2ε)^2]: the slope of the activity map, i.e. how fast useful
    signal correlation decays per noisy stage. *)
