type verdict = {
  epsilon : float;
  delta : float;
  min_overhead : float;
  max_overhead : float;
  mean_overhead : float;
  per_benchmark : (string * float) list;
  holds : bool;
}

let check ?(threshold = 0.40) profiles =
  if profiles = [] then invalid_arg "Headline.check: empty profile list";
  let epsilon = 0.01 and delta = 0.01 in
  let per_benchmark =
    List.map
      (fun p ->
        let row =
          Benchmark_eval.evaluate_profile ~delta ~leakage_share0:0.5 p ~epsilon
        in
        (p.Profile.name, row.Benchmark_eval.energy_ratio -. 1.))
      profiles
  in
  let overheads = List.map snd per_benchmark in
  let min_overhead = List.fold_left Float.min infinity overheads in
  let max_overhead = List.fold_left Float.max neg_infinity overheads in
  let mean_overhead = Nano_util.Math_ext.mean overheads in
  {
    epsilon;
    delta;
    min_overhead;
    max_overhead;
    mean_overhead;
    per_benchmark;
    holds = max_overhead >= threshold;
  }
