lib/nano_bounds/voltage_tradeoff.ml: Metrics Nano_energy
