lib/nano_bounds/leakage.mli:
