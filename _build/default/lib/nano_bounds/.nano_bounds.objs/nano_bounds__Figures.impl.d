lib/nano_bounds/figures.ml: Leakage List Metrics Nano_util Option Printf Redundancy_bound Switching
