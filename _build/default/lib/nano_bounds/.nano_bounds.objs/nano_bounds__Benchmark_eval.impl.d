lib/nano_bounds/benchmark_eval.ml: List Metrics Profile
