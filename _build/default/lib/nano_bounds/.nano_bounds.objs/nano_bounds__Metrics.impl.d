lib/nano_bounds/metrics.ml: Buffer Depth_bound Leakage Nano_util Option Printf Redundancy_bound Switching
