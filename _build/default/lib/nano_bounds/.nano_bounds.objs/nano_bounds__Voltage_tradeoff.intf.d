lib/nano_bounds/voltage_tradeoff.mli: Metrics Nano_energy
