lib/nano_bounds/redundancy_bound.mli:
