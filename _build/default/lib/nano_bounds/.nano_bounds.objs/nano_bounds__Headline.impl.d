lib/nano_bounds/headline.ml: Benchmark_eval Float List Nano_util Profile
