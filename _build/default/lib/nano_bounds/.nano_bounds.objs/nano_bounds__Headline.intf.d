lib/nano_bounds/headline.mli: Profile
