lib/nano_bounds/switching.mli:
