lib/nano_bounds/profile.mli: Format Metrics Nano_netlist
