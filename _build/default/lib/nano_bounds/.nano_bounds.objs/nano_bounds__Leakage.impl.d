lib/nano_bounds/leakage.ml:
