lib/nano_bounds/switching.ml:
