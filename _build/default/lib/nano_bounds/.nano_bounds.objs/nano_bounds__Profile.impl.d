lib/nano_bounds/profile.ml: Float Format List Metrics Nano_netlist Nano_sim Nano_util
