lib/nano_bounds/crossover.mli: Metrics
