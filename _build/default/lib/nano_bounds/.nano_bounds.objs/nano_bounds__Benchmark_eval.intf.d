lib/nano_bounds/benchmark_eval.mli: Profile
