lib/nano_bounds/redundancy_bound.ml: Float Nano_util
