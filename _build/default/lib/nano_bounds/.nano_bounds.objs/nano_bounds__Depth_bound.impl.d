lib/nano_bounds/depth_bound.ml: Float Nano_util
