lib/nano_bounds/crossover.ml: List Metrics Nano_util
