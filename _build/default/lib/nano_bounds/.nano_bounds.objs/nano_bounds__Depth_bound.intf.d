lib/nano_bounds/depth_bound.mli:
