lib/nano_bounds/figures.mli: Metrics
