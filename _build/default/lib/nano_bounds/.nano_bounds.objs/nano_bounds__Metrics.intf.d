lib/nano_bounds/metrics.mli:
