module Netlist = Nano_netlist.Netlist
module Gate = Nano_netlist.Gate

type encoding = {
  nvars : int;
  clauses : int list list;
  input_var : (string * int) list;
  output_var : (string * int) list;
}

type builder = {
  mutable next : int;
  mutable acc : int list list;
}

let fresh b =
  let v = b.next in
  b.next <- v + 1;
  v

let add b clause = b.acc <- clause :: b.acc

(* y <-> a XOR b *)
let xor2 b y a bb =
  add b [ -y; a; bb ];
  add b [ -y; -a; -bb ];
  add b [ y; -a; bb ];
  add b [ y; a; -bb ]

let xor_chain b y inputs =
  match inputs with
  | [] -> invalid_arg "Cnf.xor_chain: empty"
  | [ single ] ->
    add b [ -y; single ];
    add b [ y; -single ]
  | first :: rest ->
    let t =
      List.fold_left
        (fun acc x ->
          let v = fresh b in
          xor2 b v acc x;
          v)
        first rest
    in
    add b [ -y; t ];
    add b [ y; -t ]

(* All size-[k] subsets of [xs], passed to [f]. *)
let iter_subsets k xs f =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let chosen = Array.make k 0 in
  let rec go start depth =
    if depth = k then f (Array.to_list chosen)
    else
      for i = start to n - 1 do
        chosen.(depth) <- arr.(i);
        go (i + 1) (depth + 1)
      done
  in
  if k <= n then go 0 0

let majority b y inputs =
  let n = List.length inputs in
  let k = (n / 2) + 1 in
  (* y -> at least k true: any n-k+1 inputs contain a true one *)
  iter_subsets (n - k + 1) inputs (fun s -> add b ((-y) :: s));
  (* ~y -> at most k-1 true: any k inputs contain a false one *)
  iter_subsets k inputs (fun s -> add b (y :: List.map (fun x -> -x) s))

let encode_gate b y kind inputs =
  match kind, inputs with
  | Gate.Input, _ -> ()
  | Gate.Const true, _ -> add b [ y ]
  | Gate.Const false, _ -> add b [ -y ]
  | Gate.Buf, [ a ] ->
    add b [ -y; a ];
    add b [ y; -a ]
  | Gate.Not, [ a ] ->
    add b [ -y; -a ];
    add b [ y; a ]
  | Gate.And, xs ->
    List.iter (fun x -> add b [ -y; x ]) xs;
    add b (y :: List.map (fun x -> -x) xs)
  | Gate.Nand, xs ->
    List.iter (fun x -> add b [ y; x ]) xs;
    add b ((-y) :: List.map (fun x -> -x) xs)
  | Gate.Or, xs ->
    List.iter (fun x -> add b [ y; -x ]) xs;
    add b ((-y) :: xs)
  | Gate.Nor, xs ->
    List.iter (fun x -> add b [ -y; -x ]) xs;
    add b (y :: xs)
  | Gate.Xor, xs -> xor_chain b y xs
  | Gate.Xnor, xs ->
    let t = fresh b in
    xor_chain b t xs;
    add b [ -y; -t ];
    add b [ y; t ]
  | Gate.Majority, xs -> majority b y xs
  | (Gate.Buf | Gate.Not), _ -> invalid_arg "Cnf.encode_gate: bad arity"

(* Encode a netlist's gates; input variables come from [var_of_input]
   (shared across miter halves). Returns node -> var. *)
let encode_netlist b ~var_of_input netlist =
  let vars = Array.make (Netlist.node_count netlist) 0 in
  Netlist.iter netlist (fun id info ->
      match info.Netlist.kind with
      | Gate.Input -> begin
        match info.Netlist.name with
        | Some nm -> vars.(id) <- var_of_input nm
        | None -> invalid_arg "Cnf: unnamed input"
      end
      | kind ->
        let y = fresh b in
        vars.(id) <- y;
        let fanins =
          Array.to_list (Array.map (fun f -> vars.(f)) info.Netlist.fanins)
        in
        encode_gate b y kind fanins);
  vars

let of_netlist netlist =
  let b = { next = 1; acc = [] } in
  let table = Hashtbl.create 16 in
  let var_of_input nm =
    match Hashtbl.find_opt table nm with
    | Some v -> v
    | None ->
      let v = fresh b in
      Hashtbl.replace table nm v;
      v
  in
  let vars = encode_netlist b ~var_of_input netlist in
  {
    nvars = b.next - 1;
    clauses = List.rev b.acc;
    input_var =
      List.map (fun nm -> (nm, Hashtbl.find table nm)) (Netlist.input_names netlist);
    output_var =
      List.map (fun (nm, node) -> (nm, vars.(node))) (Netlist.outputs netlist);
  }

let interface netlist =
  ( List.sort compare (Netlist.input_names netlist),
    List.sort compare (List.map fst (Netlist.outputs netlist)) )

let miter a bnet =
  let ia, oa = interface a in
  let ib, ob = interface bnet in
  if ia <> ib then invalid_arg "Cnf.miter: input interfaces differ";
  if oa <> ob then invalid_arg "Cnf.miter: output interfaces differ";
  let b = { next = 1; acc = [] } in
  let table = Hashtbl.create 16 in
  let var_of_input nm =
    match Hashtbl.find_opt table nm with
    | Some v -> v
    | None ->
      let v = fresh b in
      Hashtbl.replace table nm v;
      v
  in
  let vars_a = encode_netlist b ~var_of_input a in
  let vars_b = encode_netlist b ~var_of_input bnet in
  let out_a = List.map (fun (nm, n) -> (nm, vars_a.(n))) (Netlist.outputs a) in
  let out_b = List.map (fun (nm, n) -> (nm, vars_b.(n))) (Netlist.outputs bnet) in
  let diffs =
    List.map
      (fun (nm, va) ->
        let vb = List.assoc nm out_b in
        let d = fresh b in
        xor2 b d va vb;
        d)
      out_a
  in
  let m = fresh b in
  (* m <-> OR diffs *)
  List.iter (fun d -> add b [ m; -d ]) diffs;
  add b ((-m) :: diffs);
  ( {
      nvars = b.next - 1;
      clauses = List.rev b.acc;
      input_var =
        List.map (fun nm -> (nm, Hashtbl.find table nm)) (Netlist.input_names a);
      output_var = out_a;
    },
    m )

let equivalent ?max_conflicts a b =
  let encoding, m = miter a b in
  match
    Sat.solve ?max_conflicts ~nvars:encoding.nvars
      ([ m ] :: encoding.clauses)
  with
  | Sat.Unsat -> `Equivalent
  | Sat.Unknown -> `Unknown
  | Sat.Sat model ->
    `Counterexample
      (List.map (fun (nm, v) -> (nm, model.(v))) encoding.input_var)
