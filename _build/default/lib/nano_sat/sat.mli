(** A conflict-driven clause-learning (CDCL) SAT solver:
    two-watched-literal unit propagation, first-UIP clause learning with
    non-chronological backjumping, activity-driven decisions with phase
    saving, and geometric restarts.

    Built for the combinational-equivalence miters this repo generates
    (see {!Cnf}). Instances that exhaust the conflict budget return
    {!constructor-Unknown} rather than a wrong answer.

    Literals are non-zero integers: [+v] is variable [v], [-v] its
    negation (DIMACS convention, variables numbered from 1). *)

type result =
  | Sat of bool array
      (** Satisfying assignment, indexed by variable (entry 0 unused). *)
  | Unsat
  | Unknown  (** Conflict budget exhausted. *)

val solve : ?max_conflicts:int -> nvars:int -> int list list -> result
(** [solve ~nvars clauses] decides the conjunction of the clauses over
    variables [1 .. nvars]. An empty clause list is satisfiable; a
    clause equal to [[]] makes the instance unsatisfiable. Literals must
    satisfy [1 <= abs lit <= nvars]. [max_conflicts] defaults to
    200_000. *)

val verify : nvars:int -> int list list -> bool array -> bool
(** [verify ~nvars clauses assignment] checks that every clause has a
    true literal under the assignment — used by tests and by callers
    that must trust a [Sat] answer. *)
