type result = Sat of bool array | Unsat | Unknown

(* Conflict-driven clause learning solver: two-watched-literal
   propagation, 1UIP learning, activity-driven decisions with phase
   saving, geometric restarts.

   Literal encoding for watch lists: +v -> 2v, -v -> 2v + 1. *)

let widx lit = if lit > 0 then 2 * lit else (2 * -lit) + 1

type solver = {
  nvars : int;
  (* clause store: originals then learned; each clause keeps its two
     watched literals at positions 0 and 1 *)
  mutable clauses : int array array;
  mutable n_clauses : int;
  (* per-variable state *)
  assign : int array;  (* 0 unassigned / 1 true / -1 false *)
  level : int array;
  reason : int array;  (* clause index, -1 for decisions *)
  activity : float array;
  saved_phase : int array;
  (* trail *)
  trail : int array;
  mutable trail_len : int;
  mutable qhead : int;
  trail_lim : int array;  (* trail length at each decision level *)
  mutable decision_level : int;
  (* watches *)
  mutable watches : int list array;
  (* conflict analysis scratch *)
  seen : bool array;
  mutable var_inc : float;
}

let lit_value s lit =
  let v = s.assign.(abs lit) in
  if v = 0 then 0
  else if (lit > 0 && v = 1) || (lit < 0 && v = -1) then 1
  else -1

let push_clause s clause =
  if s.n_clauses >= Array.length s.clauses then begin
    let grown = Array.make (max 16 (2 * Array.length s.clauses)) [||] in
    Array.blit s.clauses 0 grown 0 s.n_clauses;
    s.clauses <- grown
  end;
  s.clauses.(s.n_clauses) <- clause;
  s.n_clauses <- s.n_clauses + 1;
  s.n_clauses - 1

let watch s lit ci = s.watches.(widx lit) <- ci :: s.watches.(widx lit)

let enqueue s lit reason =
  let v = abs lit in
  s.assign.(v) <- (if lit > 0 then 1 else -1);
  s.level.(v) <- s.decision_level;
  s.reason.(v) <- reason;
  s.trail.(s.trail_len) <- lit;
  s.trail_len <- s.trail_len + 1

let bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 1 to s.nvars do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end

(* Propagate from qhead; returns the index of a conflicting clause or
   -1. *)
let propagate s =
  let conflict = ref (-1) in
  while !conflict < 0 && s.qhead < s.trail_len do
    let lit = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    let falsified = -lit in
    let wi = widx falsified in
    let watching = s.watches.(wi) in
    s.watches.(wi) <- [];
    let rec process = function
      | [] -> ()
      | ci :: rest ->
        let clause = s.clauses.(ci) in
        if clause.(0) = falsified then begin
          clause.(0) <- clause.(1);
          clause.(1) <- falsified
        end;
        if lit_value s clause.(0) = 1 then begin
          s.watches.(wi) <- ci :: s.watches.(wi);
          process rest
        end
        else begin
          let n = Array.length clause in
          let rec find k =
            if k >= n then -1
            else if lit_value s clause.(k) >= 0 then k
            else find (k + 1)
          in
          let k = find 2 in
          if k >= 0 then begin
            let w = clause.(k) in
            clause.(k) <- clause.(1);
            clause.(1) <- w;
            watch s w ci;
            process rest
          end
          else begin
            s.watches.(wi) <- ci :: s.watches.(wi);
            match lit_value s clause.(0) with
            | 0 ->
              enqueue s clause.(0) ci;
              process rest
            | -1 ->
              List.iter (fun c -> s.watches.(wi) <- c :: s.watches.(wi)) rest;
              conflict := ci
            | _ -> process rest
          end
        end
    in
    process watching
  done;
  !conflict

(* First-UIP conflict analysis. Returns (learned clause with the
   asserting literal first, backjump level). *)
let analyze s conflict_ci =
  let learned = ref [] in
  let counter = ref 0 in
  let clause = ref s.clauses.(conflict_ci) in
  let index = ref (s.trail_len - 1) in
  let uip = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    Array.iter
      (fun lit ->
        let v = abs lit in
        if (not s.seen.(v)) && s.level.(v) > 0 then begin
          s.seen.(v) <- true;
          bump s v;
          if s.level.(v) = s.decision_level then incr counter
          else learned := lit :: !learned
        end)
      !clause;
    (* walk the trail back to the next marked literal *)
    let rec back () =
      let lit = s.trail.(!index) in
      decr index;
      if s.seen.(abs lit) then lit else back ()
    in
    let lit = back () in
    s.seen.(abs lit) <- false;
    decr counter;
    if !counter = 0 then begin
      uip := -lit;
      continue_ := false
    end
    else begin
      (* resolve with its reason, skipping the pivot literal *)
      let r = s.reason.(abs lit) in
      let reason_clause = s.clauses.(r) in
      clause :=
        Array.of_list
          (List.filter
             (fun l -> abs l <> abs lit)
             (Array.to_list reason_clause))
    end
  done;
  let body = !learned in
  List.iter (fun l -> s.seen.(abs l) <- false) body;
  let backjump =
    List.fold_left (fun acc l -> max acc s.level.(abs l)) 0 body
  in
  (Array.of_list (!uip :: body), backjump)

let cancel_until s target_level =
  if s.decision_level > target_level then begin
    let keep = s.trail_lim.(target_level) in
    for i = s.trail_len - 1 downto keep do
      let v = abs s.trail.(i) in
      s.saved_phase.(v) <- s.assign.(v);
      s.assign.(v) <- 0;
      s.reason.(v) <- -1
    done;
    s.trail_len <- keep;
    s.qhead <- keep;
    s.decision_level <- target_level
  end

let pick_branch s =
  let best = ref 0 in
  let best_act = ref neg_infinity in
  for v = 1 to s.nvars do
    if s.assign.(v) = 0 && s.activity.(v) > !best_act then begin
      best := v;
      best_act := s.activity.(v)
    end
  done;
  if !best = 0 then None
  else begin
    let v = !best in
    Some (if s.saved_phase.(v) >= 0 then v else -v)
  end

let preprocess ~nvars clauses =
  let prepared = ref [] in
  let empty = ref false in
  List.iter
    (fun clause ->
      List.iter
        (fun lit ->
          if lit = 0 || abs lit > nvars then
            invalid_arg "Sat.solve: literal out of range")
        clause;
      let sorted = List.sort_uniq compare clause in
      let tautology = List.exists (fun l -> List.mem (-l) sorted) sorted in
      if not tautology then begin
        match sorted with
        | [] -> empty := true
        | _ -> prepared := Array.of_list sorted :: !prepared
      end)
    clauses;
  (!empty, List.rev !prepared)

exception Found_unsat

let solve ?(max_conflicts = 200_000) ~nvars clauses =
  if nvars < 0 then invalid_arg "Sat.solve: nvars >= 0";
  let empty, prepared = preprocess ~nvars clauses in
  if empty then Unsat
  else begin
    let s =
      {
        nvars;
        clauses = Array.make (max 16 (List.length prepared * 2)) [||];
        n_clauses = 0;
        assign = Array.make (nvars + 1) 0;
        level = Array.make (nvars + 1) 0;
        reason = Array.make (nvars + 1) (-1);
        activity = Array.make (nvars + 1) 0.;
        saved_phase = Array.make (nvars + 1) 0;
        trail = Array.make (nvars + 1) 0;
        trail_len = 0;
        qhead = 0;
        trail_lim = Array.make (nvars + 2) 0;
        decision_level = 0;
        watches = Array.make ((2 * nvars) + 2) [];
        seen = Array.make (nvars + 1) false;
        var_inc = 1.;
      }
    in
    (* initial activity and phase bias from occurrence counts *)
    List.iter
      (fun clause ->
        Array.iter
          (fun lit ->
            let v = abs lit in
            s.activity.(v) <- s.activity.(v) +. 1.;
            s.saved_phase.(v) <-
              s.saved_phase.(v) + (if lit > 0 then 1 else -1))
          clause)
      prepared;
    try
      List.iter
        (fun clause ->
          if Array.length clause = 1 then begin
            match lit_value s clause.(0) with
            | 1 -> ()
            | 0 -> enqueue s clause.(0) (-1)
            | _ -> raise Found_unsat
          end
          else begin
            let ci = push_clause s clause in
            watch s clause.(0) ci;
            watch s clause.(1) ci
          end)
        prepared;
      let conflicts = ref 0 in
      let restart_limit = ref 100 in
      let conflicts_since_restart = ref 0 in
      let result = ref None in
      while !result = None do
        let confl = propagate s in
        if confl >= 0 then begin
          incr conflicts;
          incr conflicts_since_restart;
          if !conflicts > max_conflicts then result := Some Unknown
          else if s.decision_level = 0 then raise Found_unsat
          else begin
            let learned, backjump = analyze s confl in
            cancel_until s backjump;
            if Array.length learned = 1 then enqueue s learned.(0) (-1)
            else begin
              let ci = push_clause s learned in
              (* position a literal of the backjump level at slot 1 *)
              let n = Array.length learned in
              let rec pos k =
                if k >= n then 1
                else if s.level.(abs learned.(k)) = backjump then k
                else pos (k + 1)
              in
              let k = pos 1 in
              let tmp = learned.(1) in
              learned.(1) <- learned.(k);
              learned.(k) <- tmp;
              watch s learned.(0) ci;
              watch s learned.(1) ci;
              enqueue s learned.(0) ci
            end;
            (* decay activities *)
            s.var_inc <- s.var_inc /. 0.95
          end
        end
        else if
          !conflicts_since_restart >= !restart_limit && s.decision_level > 0
        then begin
          conflicts_since_restart := 0;
          restart_limit := !restart_limit + (!restart_limit / 2);
          cancel_until s 0
        end
        else begin
          match pick_branch s with
          | None ->
            let model = Array.make (nvars + 1) false in
            for i = 0 to s.trail_len - 1 do
              if s.trail.(i) > 0 then model.(s.trail.(i)) <- true
            done;
            result := Some (Sat model)
          | Some lit ->
            s.trail_lim.(s.decision_level) <- s.trail_len;
            s.decision_level <- s.decision_level + 1;
            enqueue s lit (-1)
        end
      done;
      match !result with Some r -> r | None -> assert false
    with Found_unsat -> Unsat
  end

let verify ~nvars clauses assignment =
  List.for_all
    (fun clause ->
      List.exists
        (fun lit ->
          let v = abs lit in
          v >= 1 && v <= nvars
          && (if lit > 0 then assignment.(v) else not assignment.(v)))
        clause)
    clauses
