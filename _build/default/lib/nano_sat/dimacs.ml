let to_string ~nvars clauses =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" nvars (List.length clauses));
  List.iter
    (fun clause ->
      List.iter (fun lit -> Buffer.add_string buf (string_of_int lit ^ " ")) clause;
      Buffer.add_string buf "0\n")
    clauses;
  Buffer.contents buf

let write_file ~path ~nvars clauses =
  let oc = open_out path in
  output_string oc (to_string ~nvars clauses);
  close_out oc

let parse_string text =
  let lines = String.split_on_char '\n' text in
  let header = ref None in
  let clauses = ref [] in
  let current = ref [] in
  let error = ref None in
  let fail msg = if !error = None then error := Some msg in
  List.iteri
    (fun lineno raw ->
      if !error = None then begin
        let line = String.trim raw in
        if line = "" || (String.length line > 0 && line.[0] = 'c') then ()
        else if String.length line > 0 && line.[0] = 'p' then begin
          match String.split_on_char ' ' line |> List.filter (( <> ) "") with
          | [ "p"; "cnf"; nv; nc ] -> begin
            match int_of_string_opt nv, int_of_string_opt nc with
            | Some nv, Some nc when nv >= 0 && nc >= 0 ->
              if !header <> None then
                fail (Printf.sprintf "line %d: duplicate header" (lineno + 1))
              else header := Some (nv, nc)
            | _ -> fail (Printf.sprintf "line %d: bad header" (lineno + 1))
          end
          | _ -> fail (Printf.sprintf "line %d: bad header" (lineno + 1))
        end
        else begin
          match !header with
          | None -> fail (Printf.sprintf "line %d: clause before header" (lineno + 1))
          | Some (nvars, _) ->
            List.iter
              (fun tok ->
                if !error = None && tok <> "" then begin
                  match int_of_string_opt tok with
                  | None ->
                    fail (Printf.sprintf "line %d: bad literal %s" (lineno + 1) tok)
                  | Some 0 ->
                    clauses := List.rev !current :: !clauses;
                    current := []
                  | Some lit ->
                    if abs lit > nvars then
                      fail
                        (Printf.sprintf "line %d: literal %d out of range"
                           (lineno + 1) lit)
                    else current := lit :: !current
                end)
              (String.split_on_char ' ' line)
        end
      end)
    lines;
  match !error, !header with
  | Some msg, _ -> Error msg
  | None, None -> Error "missing 'p cnf' header"
  | None, Some (nvars, declared) ->
    if !current <> [] then Error "unterminated clause (missing 0)"
    else begin
      let clause_list = List.rev !clauses in
      if List.length clause_list <> declared then
        Error
          (Printf.sprintf "declared %d clauses, found %d" declared
             (List.length clause_list))
      else Ok (nvars, clause_list)
    end

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text
