(** DIMACS CNF reader/writer — the exchange format of every SAT solver
    since the 1990s; lets the miters this repo generates be
    cross-checked with external solvers. *)

val to_string : nvars:int -> int list list -> string
(** Render ["p cnf <nvars> <nclauses>"] plus one zero-terminated line
    per clause. *)

val write_file : path:string -> nvars:int -> int list list -> unit

val parse_string : string -> (int * int list list, string) result
(** Parse a DIMACS file body: returns [(nvars, clauses)]. Accepts ['c']
    comment lines, requires a single ['p cnf'] header, ignores blank
    lines, and checks literal ranges and the declared clause count
    (a mismatch is reported as an error). *)

val parse_file : string -> (int * int list list, string) result
