lib/nano_sat/cnf.mli: Nano_netlist
