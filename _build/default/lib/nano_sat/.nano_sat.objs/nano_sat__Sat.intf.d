lib/nano_sat/sat.mli:
