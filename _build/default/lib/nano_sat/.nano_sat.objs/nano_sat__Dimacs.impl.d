lib/nano_sat/dimacs.ml: Buffer List Printf String
