lib/nano_sat/cnf.ml: Array Hashtbl List Nano_netlist Sat
