lib/nano_sat/dimacs.mli:
