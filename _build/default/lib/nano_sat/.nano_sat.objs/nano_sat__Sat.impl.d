lib/nano_sat/sat.ml: Array List
