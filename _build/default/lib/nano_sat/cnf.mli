(** CNF generation: Tseitin encoding of netlists and equivalence
    miters. *)

type encoding = {
  nvars : int;
  clauses : int list list;
  input_var : (string * int) list;  (** SAT variable per primary input. *)
  output_var : (string * int) list;  (** SAT variable per primary output. *)
}

val of_netlist : Nano_netlist.Netlist.t -> encoding
(** Tseitin-encode every gate; the formula's models are exactly the
    consistent input/output/internal valuations of the circuit. *)

val miter :
  Nano_netlist.Netlist.t -> Nano_netlist.Netlist.t ->
  encoding * int
(** [miter a b] builds one CNF over shared inputs (matched by name) and
    both circuits' logic, plus a fresh miter variable constrained to be
    true iff some same-named output pair disagrees. Returns the
    encoding and the miter variable: the instance with the unit clause
    [[miter_var]] is satisfiable iff the circuits differ. Raises
    [Invalid_argument] when the interfaces don't match (same contract
    as [Nano_synth.Equiv]). *)

val equivalent :
  ?max_conflicts:int -> Nano_netlist.Netlist.t -> Nano_netlist.Netlist.t ->
  [ `Equivalent | `Counterexample of (string * bool) list | `Unknown ]
(** Decide equivalence through the miter; counterexamples are complete
    input assignments. *)
