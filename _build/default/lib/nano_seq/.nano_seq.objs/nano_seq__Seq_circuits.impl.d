lib/nano_seq/seq_circuits.ml: Array List Nano_netlist Printf Seq_netlist
