lib/nano_seq/vcd.ml: Array Buffer Char List Nano_netlist Printf Seq_netlist String
