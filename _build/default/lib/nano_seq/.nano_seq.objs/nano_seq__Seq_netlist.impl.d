lib/nano_seq/seq_netlist.ml: Array Hashtbl Int64 List Nano_bounds Nano_energy Nano_netlist Nano_sim Nano_util Printf
