lib/nano_seq/seq_circuits.mli: Seq_netlist
