lib/nano_seq/seq_netlist.mli: Nano_bounds Nano_energy Nano_netlist
