lib/nano_seq/noisy_seq.ml: Array Hashtbl Int64 List Nano_faults Nano_netlist Nano_util Seq_netlist
