lib/nano_seq/noisy_seq.mli: Seq_netlist
