lib/nano_seq/vcd.mli: Seq_netlist
