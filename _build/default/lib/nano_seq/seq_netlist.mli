(** Sequential circuits: a combinational core plus edge-triggered
    registers.

    The paper's framework is combinational; its conclusion names "the
    treatment of sequential circuits" as future work. This module
    implements the standard reduction: a register file around a
    combinational core, with cycle-accurate simulation, time-frame
    expansion (unrolling) so that every combinational bound applies per
    frame, and measured *temporal* switching activity to compare against
    the temporal-independence model the bounds assume.

    Conventions: every register is a pair of core ports — a primary
    input carrying the present state and a primary output computing the
    next state. All other core ports are the circuit's real inputs and
    outputs. *)

type register = {
  state : string;  (** Core input holding the register's current value. *)
  next : string;  (** Core output computing the register's next value. *)
  init : bool;  (** Reset value. *)
}

type t

val create :
  core:Nano_netlist.Netlist.t -> registers:register list -> (t, string) result
(** Validates that every [state] names a distinct core input, every
    [next] a distinct core output, and returns the machine. A circuit
    with an empty register list is just a combinational circuit in a
    wrapper. *)

val create_exn :
  core:Nano_netlist.Netlist.t -> registers:register list -> t
(** Like {!create} but raises [Invalid_argument]. *)

val core : t -> Nano_netlist.Netlist.t
val registers : t -> register list
val state_bits : t -> int

val free_inputs : t -> string list
(** Core inputs that are not register state ports (the machine's real
    inputs), in declaration order. *)

val observable_outputs : t -> string list
(** Core outputs that are not register next-state ports. *)

val map_core :
  (Nano_netlist.Netlist.t -> Nano_netlist.Netlist.t) -> t -> (t, string) result
(** [map_core f m] applies a combinational transformation (e.g.
    [Nano_synth.Script.rugged_lite]) to the core. The transformation
    must preserve the core's interface — register ports included —
    which every [Nano_synth] pass does; an interface change is reported
    as [Error]. *)

(** {1 Simulation} *)

val simulate :
  t -> inputs:(string * bool) list list -> (string * bool) list list
(** [simulate m ~inputs] runs one cycle per element of [inputs] from the
    reset state; each element must bind every free input. Returns the
    observable outputs per cycle (values before the clock edge of that
    cycle). *)

val final_state : t -> inputs:(string * bool) list list -> (string * bool) list
(** Register values after consuming the stimulus. *)

(** {1 Time-frame expansion} *)

val unroll : t -> cycles:int -> Nano_netlist.Netlist.t
(** [unroll m ~cycles] builds a combinational netlist with inputs
    [name@t] for each free input and cycle [t] (0-based), outputs
    [name@t] for each observable output, plus [state@final] outputs for
    the registers. The initial state is baked in as constants. Requires
    [cycles >= 1]. Unrolled evaluation agrees cycle-for-cycle with
    {!simulate} (tested). *)

(** {1 Activity} *)

val temporal_activity :
  ?seed:int -> ?cycles:int -> ?input_probability:float -> t -> float array
(** Per-core-node toggle rate between {e consecutive cycles} of a random
    input stream — the physical switching activity of the sequential
    machine, including state correlation that the temporal-independence
    model ignores. One entry per core node id. *)

val average_gate_temporal_activity :
  ?seed:int -> ?cycles:int -> ?input_probability:float -> t -> float
(** Mean of {!temporal_activity} over logic gates, i.e. the sequential
    counterpart of the paper's [sw0]. *)

val energy_trace :
  ?seed:int -> ?cycles:int -> ?input_probability:float ->
  tech:Nano_energy.Technology.t -> t -> float array
(** Per-cycle switching energy of the core under a random input stream:
    entry [t] is the mean (over 64 parallel streams) energy spent
    switching between cycle [t-1] and cycle [t], using the per-gate-kind
    capacitances of [Nano_energy.Energy_model.gate_capacitance]. Entry 0
    covers the transition out of reset. *)

val profile :
  ?seed:int -> ?cycles:int -> t -> Nano_bounds.Profile.t
(** Bound-ready profile of the per-cycle combinational work: the core's
    size/depth/fanin/sensitivity with [sw0] replaced by the measured
    temporal activity. Feeding this to [Nano_bounds.Metrics] bounds the
    energy of one clock cycle of the fault-tolerant machine. *)
