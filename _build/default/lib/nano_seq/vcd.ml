(* VCD identifiers: printable ASCII starting at '!'; multi-character
   once the single characters run out. *)
let identifier i =
  let base = 94 in
  let rec go i acc =
    let c = Char.chr (33 + (i mod base)) in
    let acc = String.make 1 c ^ acc in
    if i < base then acc else go ((i / base) - 1) acc
  in
  go i ""

let of_signals ?(design = "nanobound") ?(timescale = "1 ns") signals =
  if signals = [] then invalid_arg "Vcd.of_signals: no signals";
  let length =
    match signals with
    | (_, first) :: _ -> List.length first
    | [] -> assert false
  in
  List.iter
    (fun (name, values) ->
      if List.length values <> length then
        invalid_arg (Printf.sprintf "Vcd.of_signals: ragged signal %s" name))
    signals;
  let names = List.map fst signals in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Vcd.of_signals: duplicate signal names";
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "$date\n  (reproducible build)\n$end\n";
  Buffer.add_string buf "$version\n  nanobound VCD writer\n$end\n";
  Buffer.add_string buf (Printf.sprintf "$timescale %s $end\n" timescale);
  Buffer.add_string buf (Printf.sprintf "$scope module %s $end\n" design);
  let ids =
    List.mapi
      (fun i (name, _) ->
        let id = identifier i in
        Buffer.add_string buf
          (Printf.sprintf "$var wire 1 %s %s $end\n" id name);
        id)
      signals
  in
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  let arrays = List.map (fun (_, vs) -> Array.of_list vs) signals in
  Buffer.add_string buf "$dumpvars\n";
  List.iter2
    (fun id values ->
      Buffer.add_string buf
        (Printf.sprintf "%c%s\n" (if values.(0) then '1' else '0') id))
    ids arrays;
  Buffer.add_string buf "$end\n#0\n";
  for t = 1 to length - 1 do
    let changes =
      List.filter_map
        (fun (id, values) ->
          if values.(t) <> values.(t - 1) then
            Some (Printf.sprintf "%c%s" (if values.(t) then '1' else '0') id)
          else None)
        (List.combine ids arrays)
    in
    if changes <> [] then begin
      Buffer.add_string buf (Printf.sprintf "#%d\n" t);
      List.iter
        (fun line ->
          Buffer.add_string buf line;
          Buffer.add_char buf '\n')
        changes
    end
  done;
  Buffer.add_string buf (Printf.sprintf "#%d\n" length);
  Buffer.contents buf

let of_simulation machine ~inputs =
  if inputs = [] then invalid_arg "Vcd.of_simulation: empty stimulus";
  let trace = Seq_netlist.simulate machine ~inputs in
  let input_signals =
    List.map
      (fun name ->
        ( name,
          List.map
            (fun cycle ->
              match List.assoc_opt name cycle with
              | Some v -> v
              | None ->
                invalid_arg
                  (Printf.sprintf "Vcd.of_simulation: stimulus misses %s" name))
            inputs ))
      (Seq_netlist.free_inputs machine)
  in
  let output_signals =
    List.map
      (fun name ->
        (name, List.map (fun cycle -> List.assoc name cycle) trace))
      (Seq_netlist.observable_outputs machine)
  in
  of_signals
    ~design:(Nano_netlist.Netlist.name (Seq_netlist.core machine))
    (input_signals @ output_signals)

let write_file ~path machine ~inputs =
  let oc = open_out path in
  output_string oc (of_simulation machine ~inputs);
  close_out oc
