(** Value Change Dump (IEEE 1364) export of simulation traces, one
    timestep per clock cycle — handy for inspecting {!Seq_netlist}
    machines in any waveform viewer. *)

val of_signals :
  ?design:string -> ?timescale:string -> (string * bool list) list -> string
(** [of_signals signals] renders named single-bit waveforms (all lists
    must share a length) as VCD text. Only changes are dumped after the
    initial [$dumpvars] section. [design] defaults to ["nanobound"];
    [timescale] to ["1 ns"]. Raises [Invalid_argument] on ragged input,
    duplicate names, or empty signal lists. *)

val of_simulation :
  Seq_netlist.t -> inputs:(string * bool) list list -> string
(** Simulate the machine on the stimulus (as {!Seq_netlist.simulate})
    and dump every free input and observable output. *)

val write_file :
  path:string -> Seq_netlist.t -> inputs:(string * bool) list list -> unit
