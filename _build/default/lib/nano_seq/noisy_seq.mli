(** Fault injection for sequential machines.

    A combinational circuit forgets its errors after every vector; a
    sequential machine can latch them. This module clocks a machine
    whose core logic gates fail with probability ε (the same von
    Neumann model as [Nano_faults.Noisy_sim]) next to a golden twin and
    tracks how output and state errors evolve over time — the
    phenomenon that makes the paper's future-work item (sequential
    treatment) qualitatively different from the combinational theory. *)

type trace = {
  epsilon : float;
  cycles : int;
  streams : int;  (** Independent machine instances simulated. *)
  output_error_per_cycle : float array;
      (** Entry [t]: fraction of streams whose observable outputs were
          wrong at cycle [t]. *)
  state_error_per_cycle : float array;
      (** Entry [t]: fraction of streams whose register file differed
          from the golden twin {e after} cycle [t]'s clock edge. *)
  final_state_error : float;
  mean_output_error : float;
}

val simulate :
  ?seed:int ->
  ?cycles:int ->
  ?streams:int ->
  ?input_probability:float ->
  epsilon:float ->
  Seq_netlist.t ->
  trace
(** Clock [streams] (default 256, rounded up to a multiple of 64)
    noisy/golden machine pairs for [cycles] (default 64) cycles from
    reset, with fresh random free inputs each cycle shared by each
    noisy/golden pair. *)

val state_halflife : trace -> int option
(** First cycle at which at least half of the streams carry a corrupted
    state; [None] if that never happens within the trace. A crude but
    useful summary of how fast errors accumulate. *)
