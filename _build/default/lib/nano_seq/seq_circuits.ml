module B = Nano_netlist.Netlist.Builder
module Gate = Nano_netlist.Gate

let counter ~bits =
  if bits < 1 then invalid_arg "Seq_circuits.counter: bits >= 1";
  let b = B.create ~name:(Printf.sprintf "counter%d" bits) () in
  let q = Array.init bits (fun i -> B.input b (Printf.sprintf "q%d" i)) in
  let en = B.input b "en" in
  let carry = ref en in
  for i = 0 to bits - 1 do
    let d = B.xor2 b q.(i) !carry in
    B.output b (Printf.sprintf "d%d" i) d;
    B.output b (Printf.sprintf "obs_q%d" i) (B.add b Gate.Buf [ q.(i) ]);
    carry := B.and2 b q.(i) !carry
  done;
  B.output b "wrap" !carry;
  let core = B.finish b in
  Seq_netlist.create_exn ~core
    ~registers:
      (List.init bits (fun i ->
           {
             Seq_netlist.state = Printf.sprintf "q%d" i;
             next = Printf.sprintf "d%d" i;
             init = false;
           }))

let lfsr ~bits ~taps =
  if bits < 2 then invalid_arg "Seq_circuits.lfsr: bits >= 2";
  if taps = [] || List.exists (fun t -> t < 0 || t >= bits) taps then
    invalid_arg "Seq_circuits.lfsr: taps must lie in [0, bits)";
  if not (List.mem (bits - 1) taps) then
    invalid_arg "Seq_circuits.lfsr: taps must include the last stage";
  let b = B.create ~name:(Printf.sprintf "lfsr%d" bits) () in
  let q = Array.init bits (fun i -> B.input b (Printf.sprintf "q%d" i)) in
  let scan_en = B.input b "scan_en" in
  let tap_nodes = List.map (fun t -> q.(t)) (List.sort_uniq compare taps) in
  let feedback =
    match tap_nodes with
    | [ single ] -> single
    | several -> B.reduce b Gate.Xor several
  in
  let feedback = B.or2 b feedback scan_en in
  B.output b "d0" feedback;
  for i = 1 to bits - 1 do
    B.output b (Printf.sprintf "d%d" i) (B.add b Gate.Buf [ q.(i - 1) ])
  done;
  B.output b "out" (B.add b Gate.Buf [ q.(bits - 1) ]);
  let core = B.finish b in
  Seq_netlist.create_exn ~core
    ~registers:
      (List.init bits (fun i ->
           {
             Seq_netlist.state = Printf.sprintf "q%d" i;
             next = Printf.sprintf "d%d" i;
             init = i = 0;
           }))

let accumulator ~width =
  if width < 1 then invalid_arg "Seq_circuits.accumulator: width >= 1";
  let b = B.create ~name:(Printf.sprintf "accum%d" width) () in
  let s = Array.init width (fun i -> B.input b (Printf.sprintf "s%d" i)) in
  let a = Array.init width (fun i -> B.input b (Printf.sprintf "a%d" i)) in
  let carry = ref (B.const b false) in
  for i = 0 to width - 1 do
    let sum = B.xor2 b (B.xor2 b s.(i) a.(i)) !carry in
    B.output b (Printf.sprintf "n%d" i) sum;
    B.output b (Printf.sprintf "acc%d" i) (B.add b Gate.Buf [ s.(i) ]);
    carry := B.maj3 b s.(i) a.(i) !carry
  done;
  B.output b "ovf" !carry;
  let core = B.finish b in
  Seq_netlist.create_exn ~core
    ~registers:
      (List.init width (fun i ->
           {
             Seq_netlist.state = Printf.sprintf "s%d" i;
             next = Printf.sprintf "n%d" i;
             init = false;
           }))

let shift_register ~bits =
  if bits < 1 then invalid_arg "Seq_circuits.shift_register: bits >= 1";
  let b = B.create ~name:(Printf.sprintf "shift%d" bits) () in
  let q = Array.init bits (fun i -> B.input b (Printf.sprintf "q%d" i)) in
  let din = B.input b "din" in
  B.output b "d0" (B.add b Gate.Buf [ din ]);
  for i = 1 to bits - 1 do
    B.output b (Printf.sprintf "d%d" i) (B.add b Gate.Buf [ q.(i - 1) ])
  done;
  B.output b "dout" (B.add b Gate.Buf [ q.(bits - 1) ]);
  let core = B.finish b in
  Seq_netlist.create_exn ~core
    ~registers:
      (List.init bits (fun i ->
           {
             Seq_netlist.state = Printf.sprintf "q%d" i;
             next = Printf.sprintf "d%d" i;
             init = false;
           }))
