module Netlist = Nano_netlist.Netlist
module B = Nano_netlist.Netlist.Builder
module Gate = Nano_netlist.Gate

type register = { state : string; next : string; init : bool }

type t = { core : Netlist.t; registers : register list }

let core t = t.core
let registers t = t.registers
let state_bits t = List.length t.registers

let create ~core ~registers =
  let input_names = Netlist.input_names core in
  let output_names = List.map fst (Netlist.outputs core) in
  let rec check = function
    | [] -> Ok ()
    | r :: rest ->
      if not (List.mem r.state input_names) then
        Error (Printf.sprintf "state port %s is not a core input" r.state)
      else if not (List.mem r.next output_names) then
        Error (Printf.sprintf "next port %s is not a core output" r.next)
      else if List.exists (fun r' -> r'.state = r.state) rest then
        Error (Printf.sprintf "duplicate state port %s" r.state)
      else if List.exists (fun r' -> r'.next = r.next) rest then
        Error (Printf.sprintf "duplicate next port %s" r.next)
      else check rest
  in
  match check registers with
  | Error _ as e -> e
  | Ok () -> Ok { core; registers }

let create_exn ~core ~registers =
  match create ~core ~registers with
  | Ok t -> t
  | Error msg -> invalid_arg ("Seq_netlist.create: " ^ msg)

let map_core f t =
  let transformed = f t.core in
  let same_interface =
    List.sort compare (Netlist.input_names t.core)
    = List.sort compare (Netlist.input_names transformed)
    && List.sort compare (List.map fst (Netlist.outputs t.core))
       = List.sort compare (List.map fst (Netlist.outputs transformed))
  in
  if not same_interface then
    Error "core transformation changed the interface"
  else create ~core:transformed ~registers:t.registers

let is_state_input t name = List.exists (fun r -> r.state = name) t.registers
let is_next_output t name = List.exists (fun r -> r.next = name) t.registers

let free_inputs t =
  List.filter (fun n -> not (is_state_input t n)) (Netlist.input_names t.core)

let observable_outputs t =
  List.filter
    (fun n -> not (is_next_output t n))
    (List.map fst (Netlist.outputs t.core))

let reset_state t = List.map (fun r -> (r.state, r.init)) t.registers

let step t state stimulus =
  let bindings = stimulus @ state in
  let out = Netlist.eval t.core bindings in
  let observable =
    List.filter (fun (n, _) -> not (is_next_output t n)) out
  in
  let state' =
    List.map (fun r -> (r.state, List.assoc r.next out)) t.registers
  in
  (observable, state')

let simulate t ~inputs =
  let rec go state acc = function
    | [] -> List.rev acc
    | stimulus :: rest ->
      let observable, state' = step t state stimulus in
      go state' (observable :: acc) rest
  in
  go (reset_state t) [] inputs

let final_state t ~inputs =
  List.fold_left
    (fun state stimulus ->
      let _, state' = step t state stimulus in
      state')
    (reset_state t) inputs

(* ------------------------------------------------------------------ *)
(* Time-frame expansion.                                                *)
(* ------------------------------------------------------------------ *)

let unroll t ~cycles =
  if cycles < 1 then invalid_arg "Seq_netlist.unroll: cycles >= 1";
  let b = B.create ~name:(Netlist.name t.core ^ "_unrolled") () in
  let core = t.core in
  (* state feed: register state name -> node driving it this frame *)
  let state_feed = Hashtbl.create 8 in
  List.iter
    (fun r -> Hashtbl.replace state_feed r.state (B.const b r.init))
    t.registers;
  for frame = 0 to cycles - 1 do
    let map = Array.make (Netlist.node_count core) (-1) in
    (* inputs of this frame *)
    List.iter
      (fun id ->
        let name =
          match (Netlist.info core id).Netlist.name with
          | Some n -> n
          | None -> Printf.sprintf "_in%d" id
        in
        map.(id) <-
          (if is_state_input t name then Hashtbl.find state_feed name
           else B.input b (Printf.sprintf "%s@%d" name frame)))
      (Netlist.inputs core);
    Netlist.iter core (fun id info ->
        match info.Netlist.kind with
        | Gate.Input -> ()
        | kind ->
          map.(id) <-
            B.add b kind
              (Array.to_list (Array.map (fun f -> map.(f)) info.Netlist.fanins)));
    List.iter
      (fun (name, node) ->
        if is_next_output t name then begin
          (* find the register fed by this output *)
          let r = List.find (fun r -> r.next = name) t.registers in
          Hashtbl.replace state_feed r.state map.(node)
        end
        else B.output b (Printf.sprintf "%s@%d" name frame) map.(node))
      (Netlist.outputs core)
  done;
  List.iter
    (fun r ->
      B.output b (r.state ^ "@final") (Hashtbl.find state_feed r.state))
    t.registers;
  B.finish b

(* ------------------------------------------------------------------ *)
(* Temporal activity: 64 independent random streams in the bit lanes.   *)
(* ------------------------------------------------------------------ *)

let warmup_cycles = 8

let temporal_activity ?(seed = 0x5e9) ?(cycles = 2048)
    ?(input_probability = 0.5) t =
  let core = t.core in
  let rng = Nano_util.Prng.create ~seed in
  let n = Netlist.node_count core in
  let values = Array.make n 0L in
  let previous = Array.make n 0L in
  let toggles = Array.make n 0 in
  let input_ids = Netlist.inputs core in
  (* state words carried between cycles, keyed by state input name *)
  let state_words = Hashtbl.create 8 in
  List.iter
    (fun r ->
      Hashtbl.replace state_words r.state (if r.init then -1L else 0L))
    t.registers;
  let counted = ref 0 in
  for cycle = 0 to cycles + warmup_cycles - 1 do
    let input_words =
      Array.of_list
        (List.map
           (fun id ->
             let name =
               match (Netlist.info core id).Netlist.name with
               | Some nm -> nm
               | None -> ""
             in
             if is_state_input t name then Hashtbl.find state_words name
             else Nano_util.Prng.word_with_density rng ~p:input_probability)
           input_ids)
    in
    Nano_sim.Bitsim.eval_words_into core ~input_words ~values;
    if cycle >= warmup_cycles then begin
      if cycle > warmup_cycles then begin
        for id = 0 to n - 1 do
          let diff = Int64.logxor values.(id) previous.(id) in
          toggles.(id) <- toggles.(id) + Nano_util.Bits.popcount64 diff
        done;
        incr counted
      end;
      Array.blit values 0 previous 0 n
    end;
    (* clock edge: latch next state *)
    List.iter
      (fun r ->
        let node = List.assoc r.next (Netlist.outputs core) in
        Hashtbl.replace state_words r.state values.(node))
      t.registers
  done;
  let total = float_of_int (!counted * 64) in
  Array.map (fun c -> float_of_int c /. total) toggles

let energy_trace ?(seed = 0xe7) ?(cycles = 256) ?(input_probability = 0.5)
    ~tech t =
  let core = t.core in
  let rng = Nano_util.Prng.create ~seed in
  let n = Netlist.node_count core in
  let values = Array.make n 0L in
  let previous = Array.make n 0L in
  let caps =
    Array.init n (fun id ->
        let info = Netlist.info core id in
        Nano_energy.Energy_model.gate_capacitance info.Netlist.kind
          ~arity:(Array.length info.Netlist.fanins))
  in
  let vdd = tech.Nano_energy.Technology.vdd in
  let unit = 0.5 *. tech.Nano_energy.Technology.cap_per_gate *. vdd *. vdd in
  let input_ids = Netlist.inputs core in
  let state_words = Hashtbl.create 8 in
  List.iter
    (fun r ->
      Hashtbl.replace state_words r.state (if r.init then -1L else 0L))
    t.registers;
  let trace = Array.make cycles 0. in
  for cycle = 0 to cycles - 1 do
    let input_words =
      Array.of_list
        (List.map
           (fun id ->
             let name =
               match (Netlist.info core id).Netlist.name with
               | Some nm -> nm
               | None -> ""
             in
             if is_state_input t name then Hashtbl.find state_words name
             else Nano_util.Prng.word_with_density rng ~p:input_probability)
           input_ids)
    in
    Nano_sim.Bitsim.eval_words_into core ~input_words ~values;
    if cycle > 0 then begin
      let energy = ref 0. in
      for id = 0 to n - 1 do
        if caps.(id) > 0. then begin
          let toggles =
            Nano_util.Bits.popcount64 (Int64.logxor values.(id) previous.(id))
          in
          energy := !energy +. (caps.(id) *. float_of_int toggles)
        end
      done;
      trace.(cycle) <- unit *. !energy /. 64.
    end;
    Array.blit values 0 previous 0 n;
    List.iter
      (fun r ->
        let node = List.assoc r.next (Netlist.outputs core) in
        Hashtbl.replace state_words r.state values.(node))
      t.registers
  done;
  (* Entry 0 is the reset transition: all-zero previous values were in
     [previous] only after the first blit, so shift by reusing entry 1's
     semantics — simplest is to report 0 there explicitly. *)
  trace

let average_gate_temporal_activity ?seed ?cycles ?input_probability t =
  let activity = temporal_activity ?seed ?cycles ?input_probability t in
  Nano_sim.Activity.average_over_gates t.core activity

let profile ?seed ?cycles t =
  let base = Nano_bounds.Profile.of_netlist t.core in
  let sw0 = average_gate_temporal_activity ?seed ?cycles t in
  {
    base with
    Nano_bounds.Profile.name = Netlist.name t.core ^ "_seq";
    sw0;
  }
