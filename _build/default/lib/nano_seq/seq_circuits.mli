(** Sequential benchmark generators for the {!Seq_netlist} extension. *)

val counter : bits:int -> Seq_netlist.t
(** Binary up-counter with enable. Free input ["en"]; observable outputs
    ["q0"..] (current count) and ["wrap"] (carry out of the increment).
    Resets to zero. Requires [bits >= 1]. *)

val lfsr : bits:int -> taps:int list -> Seq_netlist.t
(** Fibonacci linear-feedback shift register. [taps] are 0-based stage
    indices XORed into the feedback (must include [bits - 1]; all below
    [bits]). Free input ["scan_en"] forces the feedback to 1 when high
    (a test hook that also keeps the core's input set non-empty).
    Observable output ["out"] is the last stage. Resets to
    [1, 0, 0, ...]. Requires [bits >= 2]. *)

val accumulator : width:int -> Seq_netlist.t
(** Adds its input bus into a register every cycle. Free inputs
    ["a0"..]; observable outputs ["acc0"..] (registered value) and
    ["ovf"] (carry of the current addition). Resets to zero. Requires
    [width >= 1]. *)

val shift_register : bits:int -> Seq_netlist.t
(** Serial-in/serial-out shift register. Free input ["din"]; observable
    output ["dout"] (last stage). Resets to zero. Requires
    [bits >= 1]. *)
