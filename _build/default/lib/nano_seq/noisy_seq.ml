module Netlist = Nano_netlist.Netlist
module Gate = Nano_netlist.Gate

type trace = {
  epsilon : float;
  cycles : int;
  streams : int;
  output_error_per_cycle : float array;
  state_error_per_cycle : float array;
  final_state_error : float;
  mean_output_error : float;
}

let noisy_node info =
  match info.Netlist.kind with
  | Gate.Input | Gate.Const _ | Gate.Buf -> false
  | Gate.Not | Gate.And | Gate.Or | Gate.Nand | Gate.Nor | Gate.Xor
  | Gate.Xnor | Gate.Majority -> true

(* Noisy word-level evaluation of the core given already-bound input
   words. *)
let eval_core ?channel core rng ~input_words ~values =
  List.iteri (fun i id -> values.(id) <- input_words.(i)) (Netlist.inputs core);
  Netlist.iter core (fun id info ->
      match info.Netlist.kind with
      | Gate.Input -> ()
      | kind ->
        let words = Array.map (fun f -> values.(f)) info.Netlist.fanins in
        let clean = Gate.eval_word kind words in
        values.(id) <-
          (match channel with
          | Some c when noisy_node info ->
            Int64.logxor clean (Nano_faults.Channel.noise_word c rng)
          | Some _ | None -> clean))

let simulate ?(seed = 0x5e61) ?(cycles = 64) ?(streams = 256)
    ?(input_probability = 0.5) ~epsilon machine =
  let core = Seq_netlist.core machine in
  let registers = Seq_netlist.registers machine in
  let channel = Nano_faults.Channel.create ~epsilon in
  let rng = Nano_util.Prng.create ~seed in
  let batches = Nano_util.Math_ext.ceil_div streams 64 in
  let total = float_of_int (batches * 64) in
  let n = Netlist.node_count core in
  let input_ids = Netlist.inputs core in
  let out_nodes =
    List.filter
      (fun (name, _) ->
        List.mem name (Seq_netlist.observable_outputs machine))
      (Netlist.outputs core)
  in
  let next_of =
    List.map
      (fun r ->
        (r.Seq_netlist.state, List.assoc r.Seq_netlist.next (Netlist.outputs core)))
      registers
  in
  let out_err = Array.make cycles 0 in
  let state_err = Array.make cycles 0 in
  for _ = 1 to batches do
    let golden_state = Hashtbl.create 8 in
    let noisy_state = Hashtbl.create 8 in
    List.iter
      (fun r ->
        let init = if r.Seq_netlist.init then -1L else 0L in
        Hashtbl.replace golden_state r.Seq_netlist.state init;
        Hashtbl.replace noisy_state r.Seq_netlist.state init)
      registers;
    let golden_values = Array.make n 0L in
    let noisy_values = Array.make n 0L in
    for t = 0 to cycles - 1 do
      (* Shared free-input draw for the twin pair. *)
      let free_draw = Hashtbl.create 8 in
      let words_for state_table =
        Array.of_list
          (List.map
             (fun id ->
               let name =
                 match (Netlist.info core id).Netlist.name with
                 | Some nm -> nm
                 | None -> ""
               in
               match Hashtbl.find_opt state_table name with
               | Some w -> w
               | None -> begin
                 match Hashtbl.find_opt free_draw name with
                 | Some w -> w
                 | None ->
                   let w =
                     Nano_util.Prng.word_with_density rng ~p:input_probability
                   in
                   Hashtbl.replace free_draw name w;
                   w
               end)
             input_ids)
      in
      let golden_inputs = words_for golden_state in
      eval_core core rng ~input_words:golden_inputs ~values:golden_values;
      let noisy_inputs = words_for noisy_state in
      eval_core ~channel core rng ~input_words:noisy_inputs
        ~values:noisy_values;
      (* Observable disagreement this cycle. *)
      let wrong = ref 0L in
      List.iter
        (fun (_, node) ->
          wrong :=
            Int64.logor !wrong
              (Int64.logxor golden_values.(node) noisy_values.(node)))
        out_nodes;
      out_err.(t) <- out_err.(t) + Nano_util.Bits.popcount64 !wrong;
      (* Clock edge. *)
      List.iter
        (fun (state_name, next_node) ->
          Hashtbl.replace golden_state state_name golden_values.(next_node);
          Hashtbl.replace noisy_state state_name noisy_values.(next_node))
        next_of;
      let diverged = ref 0L in
      List.iter
        (fun (state_name, _) ->
          diverged :=
            Int64.logor !diverged
              (Int64.logxor
                 (Hashtbl.find golden_state state_name)
                 (Hashtbl.find noisy_state state_name)))
        next_of;
      state_err.(t) <- state_err.(t) + Nano_util.Bits.popcount64 !diverged
    done
  done;
  let output_error_per_cycle =
    Array.map (fun c -> float_of_int c /. total) out_err
  in
  let state_error_per_cycle =
    Array.map (fun c -> float_of_int c /. total) state_err
  in
  {
    epsilon;
    cycles;
    streams = batches * 64;
    output_error_per_cycle;
    state_error_per_cycle;
    final_state_error =
      (if cycles = 0 then 0. else state_error_per_cycle.(cycles - 1));
    mean_output_error =
      (if cycles = 0 then 0.
       else
         Array.fold_left ( +. ) 0. output_error_per_cycle
         /. float_of_int cycles);
  }

let state_halflife trace =
  let rec go t =
    if t >= trace.cycles then None
    else if trace.state_error_per_cycle.(t) >= 0.5 then Some t
    else go (t + 1)
  in
  go 0
