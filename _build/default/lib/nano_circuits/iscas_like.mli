(** Structurally faithful substitutes for the ISCAS'85 benchmark
    families.

    The original netlists are distributed with SIS; this repo ships
    generators for the same {e functional families} instead (see the
    substitution table in DESIGN.md): the bounds consume only per-circuit
    scalars (sensitivity, size, average fanin, activity), which these
    circuits exercise through the identical pipeline. [c17] is the real
    netlist — it is six NAND gates and fully public. *)

val c17 : unit -> Nano_netlist.Netlist.t
(** The actual ISCAS c17: 5 inputs, 2 outputs, 6 two-input NANDs. *)

val interrupt_controller :
  groups:int -> channels_per_group:int -> Nano_netlist.Netlist.t
(** c432 family: priority interrupt controller. Requests are masked by
    per-group enables; outputs are the one-hot grant of the
    highest-priority group with an active request plus the encoded index
    of the winning channel inside that group. Requires [groups >= 1],
    [channels_per_group >= 2]. c432's shape is [groups = 3],
    [channels_per_group = 9]. *)

val hamming_corrector : data_bits:int -> Nano_netlist.Netlist.t
(** c499/c1355 family: single-error-correcting receiver. Inputs are
    [data_bits] received data bits plus the received Hamming check bits;
    outputs are the corrected data bits. [data_bits = 32] mirrors
    c499's 41-input/32-output shape. Requires [1 <= data_bits <= 120]. *)

val error_detector : data_bits:int -> Nano_netlist.Netlist.t
(** c1908 family: SEC receiver with double-error detection — a Hamming
    corrector extended with an overall parity bit and ["single_err"] /
    ["double_err"] flags. Requires [1 <= data_bits <= 120]. *)

val bcd_adder : digits:int -> Nano_netlist.Netlist.t
(** c3540 family: BCD (decimal-coded) ripple adder. Each digit is a
    4-bit binary add followed by the classic +6 correction when the
    binary sum exceeds 9. Inputs [a0..], [b0..] (4 bits per digit, digit
    0 least significant) and [cin]; outputs [s0..] and [cout]. Operand
    digits are assumed valid BCD (0-9). Requires [1 <= digits <= 8]. *)

val mixed_datapath : width:int -> Nano_netlist.Netlist.t
(** c2670/c5315/c7552 family: a datapath slice combining a
    carry-lookahead adder, an operand comparator, result parity and
    zero-detect — the adder/comparator/parity mix those circuits are
    documented to contain. Requires [width >= 2]. *)

val hamming_positions : data_bits:int -> int * int list array
(** [(check_bits, groups)] where [groups.(j)] lists the 0-based data-bit
    positions covered by check bit [j] in the systematic Hamming code
    used by {!hamming_corrector}; exposed for the test suite. *)
