module B = Nano_netlist.Netlist.Builder
module Gate = Nano_netlist.Gate

let chunks ~size xs =
  let rec go acc current count = function
    | [] ->
      let acc = if current = [] then acc else List.rev current :: acc in
      List.rev acc
    | x :: rest ->
      if count = size then go (List.rev current :: acc) [ x ] 1 rest
      else go acc (x :: current) (count + 1) rest
  in
  go [] [] 0 xs

let reduction_tree kind ~inputs ~fanin ~prefix ~out_name =
  if inputs < 1 then invalid_arg "Trees: inputs >= 1";
  if fanin < 2 then invalid_arg "Trees: fanin >= 2";
  let name = Printf.sprintf "%s%d_k%d" prefix inputs fanin in
  let b = B.create ~name () in
  let leaves =
    List.init inputs (fun i -> B.input b (Printf.sprintf "x%d" i))
  in
  let rec reduce nodes =
    match nodes with
    | [ single ] -> single
    | _ ->
      let groups = chunks ~size:fanin nodes in
      let level =
        List.map
          (fun group ->
            match group with
            | [ single ] -> single
            | several -> B.add b kind several)
          groups
      in
      reduce level
  in
  let root = reduce leaves in
  B.output b out_name root;
  B.finish b

let parity_tree ~inputs ~fanin =
  reduction_tree Gate.Xor ~inputs ~fanin ~prefix:"parity" ~out_name:"parity"

let and_tree ~inputs ~fanin =
  reduction_tree Gate.And ~inputs ~fanin ~prefix:"andtree" ~out_name:"y"

let or_tree ~inputs ~fanin =
  reduction_tree Gate.Or ~inputs ~fanin ~prefix:"ortree" ~out_name:"y"

let majority_tree ~inputs =
  let rec is_power_of_3 n = n = 1 || (n mod 3 = 0 && is_power_of_3 (n / 3)) in
  if inputs < 1 || not (is_power_of_3 inputs) then
    invalid_arg "Trees.majority_tree: inputs must be a power of 3";
  let b = B.create ~name:(Printf.sprintf "majtree%d" inputs) () in
  let leaves =
    List.init inputs (fun i -> B.input b (Printf.sprintf "x%d" i))
  in
  let rec reduce = function
    | [ single ] -> single
    | nodes ->
      let groups = chunks ~size:3 nodes in
      let level =
        List.map
          (fun group ->
            match group with
            | [ x; y; z ] -> B.maj3 b x y z
            | _ -> assert false)
          groups
      in
      reduce level
  in
  B.output b "maj" (reduce leaves);
  B.finish b

let mux2 b ~sel ~if0 ~if1 =
  let n_sel = B.not_ b sel in
  B.or2 b (B.and2 b n_sel if0) (B.and2 b sel if1)

let mux_tree ~select_bits =
  if select_bits < 1 then invalid_arg "Trees.mux_tree: select_bits >= 1";
  let data = 1 lsl select_bits in
  let b = B.create ~name:(Printf.sprintf "mux%d" data) () in
  let sels =
    Array.init select_bits (fun i -> B.input b (Printf.sprintf "sel%d" i))
  in
  let leaves =
    ref (List.init data (fun i -> B.input b (Printf.sprintf "d%d" i)))
  in
  for level = 0 to select_bits - 1 do
    let rec pair = function
      | [] -> []
      | if0 :: if1 :: rest ->
        mux2 b ~sel:sels.(level) ~if0 ~if1 :: pair rest
      | [ _ ] -> invalid_arg "Trees.mux_tree: odd level"
    in
    leaves := pair !leaves
  done;
  (match !leaves with
  | [ root ] -> B.output b "y" root
  | _ -> assert false);
  B.finish b

let decoder ~bits =
  if bits < 1 || bits > 8 then invalid_arg "Trees.decoder: 1 <= bits <= 8";
  let b = B.create ~name:(Printf.sprintf "dec%d" bits) () in
  let sel = Array.init bits (fun i -> B.input b (Printf.sprintf "s%d" i)) in
  let nsel = Array.map (fun s -> B.not_ b s) sel in
  for v = 0 to (1 lsl bits) - 1 do
    let literals =
      List.init bits (fun i ->
          if (v lsr i) land 1 = 1 then sel.(i) else nsel.(i))
    in
    let term =
      match literals with
      | [ single ] -> single
      | several -> B.reduce b Gate.And several
    in
    B.output b (Printf.sprintf "y%d" v) term
  done;
  B.finish b

let comparator ~width =
  if width < 1 then invalid_arg "Trees.comparator: width >= 1";
  let b = B.create ~name:(Printf.sprintf "cmp%d" width) () in
  let a = Array.init width (fun i -> B.input b (Printf.sprintf "a%d" i)) in
  let bv = Array.init width (fun i -> B.input b (Printf.sprintf "b%d" i)) in
  (* Scan from the most significant bit down, tracking "all higher bits
     equal" and accumulating the strict comparisons. *)
  let eq_bits = Array.init width (fun i -> B.xnor2 b a.(i) bv.(i)) in
  let gt = ref None and lt = ref None and all_eq = ref None in
  for i = width - 1 downto 0 do
    let nb = B.not_ b bv.(i) in
    let na = B.not_ b a.(i) in
    let gt_here = B.and2 b a.(i) nb in
    let lt_here = B.and2 b na bv.(i) in
    let gt_term, lt_term =
      match !all_eq with
      | None -> (gt_here, lt_here)
      | Some prefix -> (B.and2 b prefix gt_here, B.and2 b prefix lt_here)
    in
    gt := Some (match !gt with None -> gt_term | Some g -> B.or2 b g gt_term);
    lt := Some (match !lt with None -> lt_term | Some l -> B.or2 b l lt_term);
    all_eq :=
      Some
        (match !all_eq with
        | None -> eq_bits.(i)
        | Some prefix -> B.and2 b prefix eq_bits.(i))
  done;
  let get = function Some n -> n | None -> assert false in
  B.output b "eq" (get !all_eq);
  B.output b "gt" (get !gt);
  B.output b "lt" (get !lt);
  B.finish b
