(** Random combinational netlists for fuzzing and property-based
    testing (the generator behind this repo's own test suite).

    Circuits are always valid DAGs over the full primitive library;
    determinism in the seed makes failures reproducible. *)

type config = {
  inputs : int;  (** Primary inputs ([>= 1]). *)
  gates : int;  (** Logic gates to create ([>= 0]). *)
  outputs : int;  (** Primary outputs to expose ([>= 1]). *)
  allow_majority : bool;  (** Include [maj3] gates in the mix. *)
  max_fanin : int;  (** Upper bound for AND/OR/XOR family arities. *)
}

val default_config : config
(** 5 inputs, 25 gates, 3 outputs, majority allowed, fanin <= 3. *)

val generate : ?config:config -> seed:int -> unit -> Nano_netlist.Netlist.t
(** Deterministic in [(config, seed)]. Outputs are drawn from distinct
    nodes biased toward the most recently created gates so the circuit
    body is observable. *)
