module B = Nano_netlist.Netlist.Builder
module Gate = Nano_netlist.Gate

type config = {
  inputs : int;
  gates : int;
  outputs : int;
  allow_majority : bool;
  max_fanin : int;
}

let default_config =
  { inputs = 5; gates = 25; outputs = 3; allow_majority = true; max_fanin = 3 }

let generate ?(config = default_config) ~seed () =
  if config.inputs < 1 then invalid_arg "Random_circuit: inputs >= 1";
  if config.gates < 0 then invalid_arg "Random_circuit: gates >= 0";
  if config.outputs < 1 then invalid_arg "Random_circuit: outputs >= 1";
  if config.max_fanin < 2 then invalid_arg "Random_circuit: max_fanin >= 2";
  let rng = Nano_util.Prng.create ~seed in
  let b = B.create ~name:(Printf.sprintf "rand%d" seed) () in
  let nodes = ref [] in
  for i = 0 to config.inputs - 1 do
    nodes := B.input b (Printf.sprintf "x%d" i) :: !nodes
  done;
  let pick () =
    let arr = Array.of_list !nodes in
    arr.(Nano_util.Prng.int rng ~bound:(Array.length arr))
  in
  let kinds =
    [ Gate.Not; Gate.And; Gate.Or; Gate.Nand; Gate.Nor; Gate.Xor; Gate.Xnor ]
    @ (if config.allow_majority then [ Gate.Majority ] else [])
    @ [ Gate.Buf ]
  in
  let kind_arr = Array.of_list kinds in
  for _ = 1 to config.gates do
    let kind = kind_arr.(Nano_util.Prng.int rng ~bound:(Array.length kind_arr)) in
    let arity =
      match kind with
      | Gate.Not | Gate.Buf -> 1
      | Gate.Majority -> 3
      | Gate.And | Gate.Or | Gate.Nand | Gate.Nor | Gate.Xor | Gate.Xnor ->
        2 + Nano_util.Prng.int rng ~bound:(config.max_fanin - 1)
      | Gate.Input | Gate.Const _ -> 0
    in
    let fanins = List.init arity (fun _ -> pick ()) in
    nodes := B.add b kind fanins :: !nodes
  done;
  (* Outputs: the newest nodes first so the circuit body is observable,
     padded with random picks (duplicate driver nodes are fine — only
     output names must be unique). *)
  let all = Array.of_list !nodes in
  for i = 0 to config.outputs - 1 do
    let driver = if i < Array.length all then all.(i) else pick () in
    B.output b (Printf.sprintf "f%d" i) driver
  done;
  B.finish b
