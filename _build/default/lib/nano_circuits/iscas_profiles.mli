(** Published structural metadata for the original ISCAS'85 benchmarks.

    These numbers (inputs, outputs, gate count, nominal depth, function
    family) are reproduced from the public benchmark documentation and
    are used only for reporting context — the bounds in this repo are
    computed from the generated substitute circuits, whose scalar
    profiles bracket the ones below. *)

type t = {
  name : string;
  inputs : int;
  outputs : int;
  gates : int;
  depth : int;
  family : string;  (** Documented function of the circuit. *)
}

val all : t list
(** The ten classic combinational benchmarks, c432 through c7552. *)

val find : string -> t option
val pp : Format.formatter -> t -> unit
