type t = {
  name : string;
  inputs : int;
  outputs : int;
  gates : int;
  depth : int;
  family : string;
}

let all =
  [
    { name = "c432"; inputs = 36; outputs = 7; gates = 160; depth = 17;
      family = "27-channel priority interrupt controller" };
    { name = "c499"; inputs = 41; outputs = 32; gates = 202; depth = 11;
      family = "32-bit single-error-correcting circuit" };
    { name = "c880"; inputs = 60; outputs = 26; gates = 383; depth = 24;
      family = "8-bit ALU" };
    { name = "c1355"; inputs = 41; outputs = 32; gates = 546; depth = 24;
      family = "32-bit SEC circuit (NAND expansion of c499)" };
    { name = "c1908"; inputs = 33; outputs = 25; gates = 880; depth = 40;
      family = "16-bit SEC/error detector" };
    { name = "c2670"; inputs = 233; outputs = 140; gates = 1193; depth = 32;
      family = "12-bit ALU and controller" };
    { name = "c3540"; inputs = 50; outputs = 22; gates = 1669; depth = 47;
      family = "8-bit ALU with BCD arithmetic" };
    { name = "c5315"; inputs = 178; outputs = 123; gates = 2307; depth = 49;
      family = "9-bit ALU with parity computing" };
    { name = "c6288"; inputs = 32; outputs = 32; gates = 2416; depth = 124;
      family = "16x16 array multiplier" };
    { name = "c7552"; inputs = 207; outputs = 108; gates = 3512; depth = 43;
      family = "32-bit adder/comparator" };
  ]

let find name = List.find_opt (fun p -> p.name = name) all

let pp ppf p =
  Format.fprintf ppf "%s: %d in, %d out, %d gates, depth %d — %s" p.name
    p.inputs p.outputs p.gates p.depth p.family
