(** Adder generators (the paper's "computer arithmetic circuits ... with
    various bitwidths").

    All adders take operands [a0..a(w-1)] and [b0..b(w-1)] (bit 0 least
    significant) plus a carry-in [cin], and expose sum bits [s0..s(w-1)]
    and [cout]. *)

val ripple_carry : width:int -> Nano_netlist.Netlist.t
(** Chain of full adders (XOR/XOR/MAJ cells). Requires [width >= 1]. *)

val carry_lookahead : width:int -> Nano_netlist.Netlist.t
(** 4-bit-group carry-lookahead with ripple between groups; max fanin 3.
    Requires [width >= 1]. *)

val carry_select : width:int -> block:int -> Nano_netlist.Netlist.t
(** Carry-select with the given block width: each block computes both
    carry hypotheses and muxes. Requires [width >= 1], [block >= 1]. *)

val carry_skip : width:int -> block:int -> Nano_netlist.Netlist.t
(** Carry-skip (carry-bypass): ripple blocks whose carry is bypassed
    through an AND of the block's propagate signals. Requires
    [width >= 1], [block >= 1]. *)

val full_adder_cell :
  Nano_netlist.Netlist.Builder.t ->
  a:Nano_netlist.Netlist.node ->
  b:Nano_netlist.Netlist.node ->
  cin:Nano_netlist.Netlist.node ->
  Nano_netlist.Netlist.node * Nano_netlist.Netlist.node
(** [(sum, carry)] built from two XOR2 and one MAJ3; reusable by other
    generators (multipliers, ALU). *)
