(** A small combinational ALU (the c880 benchmark family is an 8-bit
    ALU).

    Inputs: operands [a0..], [b0..], opcode [op0..op2], carry-in [cin].
    Outputs: [y0..y(w-1)], [cout], [zero].

    Opcodes: 0 ADD, 1 SUB, 2 AND, 3 OR, 4 XOR, 5 NOR, 6 pass A,
    7 NOT A. *)

val make : width:int -> Nano_netlist.Netlist.t
(** Requires [width >= 1]. *)
