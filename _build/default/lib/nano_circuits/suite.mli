(** The benchmark suite evaluated in Figures 7 and 8: ISCAS'85-family
    substitutes plus the computer-arithmetic circuits (ripple-carry
    adders and array multipliers at several bitwidths) named by the
    paper's Section 6. *)

type entry = {
  name : string;
  description : string;
  iscas_counterpart : string option;
      (** Which original benchmark this entry substitutes for, if any. *)
  build : unit -> Nano_netlist.Netlist.t;
}

val all : entry list
(** The full evaluation suite (generated fresh on each [build]). *)

val arithmetic : entry list
(** Just the adders/multipliers subset. *)

val iscas_substitutes : entry list
(** Just the ISCAS-family subset. *)

val find : string -> entry option
val names : unit -> string list
