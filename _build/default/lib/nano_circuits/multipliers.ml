module B = Nano_netlist.Netlist.Builder

let half_adder b x y = (B.xor2 b x y, B.and2 b x y)

let full_adder b x y z =
  let s1 = B.xor2 b x y in
  (B.xor2 b s1 z, B.maj3 b x y z)

let partial_products b ~width =
  let a = Array.init width (fun i -> B.input b (Printf.sprintf "a%d" i)) in
  let bv = Array.init width (fun j -> B.input b (Printf.sprintf "b%d" j)) in
  Array.init width (fun j -> Array.init width (fun i -> B.and2 b a.(i) bv.(j)))

let array_multiplier ~width =
  if width < 1 then invalid_arg "Multipliers.array_multiplier: width >= 1";
  let b = B.create ~name:(Printf.sprintf "mult%d" width) () in
  let pp = partial_products b ~width in
  (* Accumulator over 2w product bits; None means a known zero. *)
  let acc = Array.make (2 * width) None in
  for i = 0 to width - 1 do
    acc.(i) <- Some pp.(0).(i)
  done;
  for j = 1 to width - 1 do
    let carry = ref None in
    for i = 0 to width - 1 do
      let bit = pp.(j).(i) in
      let pos = j + i in
      let sum, cout =
        match acc.(pos), !carry with
        | None, None -> (bit, None)
        | Some x, None | None, Some x ->
          let s, c = half_adder b x bit in
          (s, Some c)
        | Some x, Some c ->
          let s, c' = full_adder b x bit c in
          (s, Some c')
      in
      acc.(pos) <- Some sum;
      carry := cout
    done;
    (match !carry with
    | Some c -> acc.(j + width) <- Some c
    | None -> ())
  done;
  for i = 0 to (2 * width) - 1 do
    let bit =
      match acc.(i) with Some n -> n | None -> B.const b false
    in
    B.output b (Printf.sprintf "p%d" i) bit
  done;
  B.finish b

let carry_save_multiplier ~width =
  if width < 2 then invalid_arg "Multipliers.carry_save_multiplier: width >= 2";
  let b = B.create ~name:(Printf.sprintf "csmult%d" width) () in
  let pp = partial_products b ~width in
  let columns = Array.make (2 * width) [] in
  for j = 0 to width - 1 do
    for i = 0 to width - 1 do
      columns.(i + j) <- pp.(j).(i) :: columns.(i + j)
    done
  done;
  (* Wallace-style reduction: 3:2-compress every column until at most two
     bits remain everywhere. *)
  let needs_pass () = Array.exists (fun c -> List.length c > 2) columns in
  while needs_pass () do
    let next = Array.make (2 * width) [] in
    Array.iteri
      (fun c bits ->
        let rec compress = function
          | x :: y :: z :: rest ->
            let s, carry = full_adder b x y z in
            next.(c) <- s :: next.(c);
            if c + 1 < 2 * width then next.(c + 1) <- carry :: next.(c + 1);
            compress rest
          | leftovers -> next.(c) <- leftovers @ next.(c)
        in
        compress bits)
      columns;
    Array.blit next 0 columns 0 (2 * width)
  done;
  (* Final carry-propagate merge of the remaining <= 2 rows. *)
  let carry = ref None in
  for c = 0 to (2 * width) - 1 do
    let bits =
      match !carry with Some x -> x :: columns.(c) | None -> columns.(c)
    in
    let out =
      match bits with
      | [] ->
        carry := None;
        B.const b false
      | [ x ] ->
        carry := None;
        x
      | [ x; y ] ->
        let s, co = half_adder b x y in
        carry := Some co;
        s
      | [ x; y; z ] ->
        let s, co = full_adder b x y z in
        carry := Some co;
        s
      | _ -> assert false
    in
    B.output b (Printf.sprintf "p%d" c) out
  done;
  B.finish b
