type entry = {
  name : string;
  description : string;
  iscas_counterpart : string option;
  build : unit -> Nano_netlist.Netlist.t;
}

let arithmetic =
  [
    {
      name = "rca8";
      description = "8-bit ripple-carry adder";
      iscas_counterpart = None;
      build = (fun () -> Adders.ripple_carry ~width:8);
    };
    {
      name = "rca16";
      description = "16-bit ripple-carry adder";
      iscas_counterpart = None;
      build = (fun () -> Adders.ripple_carry ~width:16);
    };
    {
      name = "rca32";
      description = "32-bit ripple-carry adder";
      iscas_counterpart = None;
      build = (fun () -> Adders.ripple_carry ~width:32);
    };
    {
      name = "cla16";
      description = "16-bit carry-lookahead adder";
      iscas_counterpart = None;
      build = (fun () -> Adders.carry_lookahead ~width:16);
    };
    {
      name = "csel16";
      description = "16-bit carry-select adder (4-bit blocks)";
      iscas_counterpart = None;
      build = (fun () -> Adders.carry_select ~width:16 ~block:4);
    };
    {
      name = "cskip16";
      description = "16-bit carry-skip adder (4-bit blocks)";
      iscas_counterpart = None;
      build = (fun () -> Adders.carry_skip ~width:16 ~block:4);
    };
    {
      name = "booth8";
      description = "8x8 Booth-recoded signed multiplier";
      iscas_counterpart = None;
      build = (fun () -> Datapath.booth_multiplier ~width:8);
    };
    {
      name = "mult4";
      description = "4x4 array multiplier";
      iscas_counterpart = None;
      build = (fun () -> Multipliers.array_multiplier ~width:4);
    };
    {
      name = "mult8";
      description = "8x8 array multiplier";
      iscas_counterpart = None;
      build = (fun () -> Multipliers.array_multiplier ~width:8);
    };
    {
      name = "csmult8";
      description = "8x8 carry-save (Wallace) multiplier";
      iscas_counterpart = None;
      build = (fun () -> Multipliers.carry_save_multiplier ~width:8);
    };
  ]

let iscas_substitutes =
  [
    {
      name = "c17";
      description = "ISCAS c17 (exact netlist, 6 NAND gates)";
      iscas_counterpart = Some "c17";
      build = (fun () -> Iscas_like.c17 ());
    };
    {
      name = "intctl27";
      description = "27-channel priority interrupt controller (3 groups of 9)";
      iscas_counterpart = Some "c432";
      build =
        (fun () ->
          Iscas_like.interrupt_controller ~groups:3 ~channels_per_group:9);
    };
    {
      name = "sec32";
      description = "32-bit single-error-correcting receiver";
      iscas_counterpart = Some "c499";
      build = (fun () -> Iscas_like.hamming_corrector ~data_bits:32);
    };
    {
      name = "alu8";
      description = "8-bit ALU (8 opcodes)";
      iscas_counterpart = Some "c880";
      build = (fun () -> Alu.make ~width:8);
    };
    {
      name = "secded16";
      description = "16-bit SEC/DED receiver";
      iscas_counterpart = Some "c1908";
      build = (fun () -> Iscas_like.error_detector ~data_bits:16);
    };
    {
      name = "datapath12";
      description = "12-bit adder/comparator/parity datapath slice";
      iscas_counterpart = Some "c2670";
      build = (fun () -> Iscas_like.mixed_datapath ~width:12);
    };
    {
      name = "sec32_nand";
      description = "32-bit SEC receiver expanded to NAND/INV gates";
      iscas_counterpart = Some "c1355";
      build =
        (fun () ->
          Nano_synth.Nand_map.run (Iscas_like.hamming_corrector ~data_bits:32));
    };
    {
      name = "bcdadd8";
      description = "8-digit BCD adder (decimal arithmetic)";
      iscas_counterpart = Some "c3540";
      build = (fun () -> Iscas_like.bcd_adder ~digits:8);
    };
    {
      name = "alu9";
      description = "9-bit ALU (8 opcodes)";
      iscas_counterpart = Some "c5315";
      build = (fun () -> Alu.make ~width:9);
    };
    {
      name = "datapath32";
      description = "32-bit adder/comparator datapath slice";
      iscas_counterpart = Some "c7552";
      build = (fun () -> Iscas_like.mixed_datapath ~width:32);
    };
    {
      name = "mult16";
      description = "16x16 array multiplier";
      iscas_counterpart = Some "c6288";
      build = (fun () -> Multipliers.array_multiplier ~width:16);
    };
    {
      name = "parity16";
      description = "16-input parity tree (fanin 2)";
      iscas_counterpart = None;
      build = (fun () -> Trees.parity_tree ~inputs:16 ~fanin:2);
    };
  ]

let all = iscas_substitutes @ arithmetic

let find name = List.find_opt (fun e -> e.name = name) all
let names () = List.map (fun e -> e.name) all
