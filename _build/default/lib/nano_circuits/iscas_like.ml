module B = Nano_netlist.Netlist.Builder
module Gate = Nano_netlist.Gate

let c17 () =
  let b = B.create ~name:"c17" () in
  let i1 = B.input b "g1" in
  let i2 = B.input b "g2" in
  let i3 = B.input b "g3" in
  let i6 = B.input b "g6" in
  let i7 = B.input b "g7" in
  let n10 = B.nand2 b i1 i3 in
  let n11 = B.nand2 b i3 i6 in
  let n16 = B.nand2 b i2 n11 in
  let n19 = B.nand2 b n11 i7 in
  let n22 = B.nand2 b n10 n16 in
  let n23 = B.nand2 b n16 n19 in
  B.output b "g22" n22;
  B.output b "g23" n23;
  B.finish b

let interrupt_controller ~groups ~channels_per_group =
  if groups < 1 then invalid_arg "Iscas_like.interrupt_controller: groups >= 1";
  if channels_per_group < 2 then
    invalid_arg "Iscas_like.interrupt_controller: channels_per_group >= 2";
  let b =
    B.create
      ~name:(Printf.sprintf "intctl%dx%d" groups channels_per_group)
      ()
  in
  let req =
    Array.init groups (fun g ->
        Array.init channels_per_group (fun c ->
            B.input b (Printf.sprintf "req%d_%d" g c)))
  in
  let en = Array.init groups (fun g -> B.input b (Printf.sprintf "en%d" g)) in
  (* Masked per-group request: enabled and at least one channel raised. *)
  let group_any =
    Array.init groups (fun g ->
        let any = B.reduce b Gate.Or (Array.to_list req.(g)) in
        B.and2 b en.(g) any)
  in
  (* Priority: group 0 wins over group 1, etc. grant_g = any_g AND none
     of the higher-priority groups. *)
  let grants =
    Array.init groups (fun g ->
        if g = 0 then group_any.(0)
        else begin
          let higher =
            List.init g (fun h -> B.not_ b group_any.(h))
          in
          B.reduce b Gate.And (group_any.(g) :: higher)
        end)
  in
  Array.iteri (fun g n -> B.output b (Printf.sprintf "grant%d" g) n) grants;
  (* Winning channel index inside the granted group: priority-encode each
     group, then OR the encodings masked by the grant. *)
  let index_bits = Nano_util.Math_ext.ceil_log2 channels_per_group in
  let encodings =
    Array.init groups (fun g ->
        (* highest channel index wins inside a group. *)
        let win =
          Array.init channels_per_group (fun c ->
              if c = channels_per_group - 1 then req.(g).(c)
              else begin
                let higher =
                  List.init
                    (channels_per_group - 1 - c)
                    (fun d -> B.not_ b req.(g).(c + 1 + d))
                in
                B.reduce b Gate.And (req.(g).(c) :: higher)
              end)
        in
        Array.init index_bits (fun bit ->
            let contributors =
              Array.to_list win
              |> List.filteri (fun c _ -> (c lsr bit) land 1 = 1)
            in
            match contributors with
            | [] -> B.const b false
            | [ single ] -> single
            | several -> B.reduce b Gate.Or several))
  in
  for bit = 0 to index_bits - 1 do
    let masked =
      List.init groups (fun g -> B.and2 b grants.(g) encodings.(g).(bit))
    in
    let value =
      match masked with
      | [ single ] -> single
      | several -> B.reduce b Gate.Or several
    in
    B.output b (Printf.sprintf "idx%d" bit) value
  done;
  B.output b "any"
    (match Array.to_list grants with
    | [ single ] -> single
    | several -> B.reduce b Gate.Or several);
  B.finish b

(* Systematic Hamming code layout: positions 1..(k+r), power-of-two
   positions hold check bits, the rest hold data bits in order. *)
let layout ~data_bits =
  let rec find_r r = if 1 lsl r >= data_bits + r + 1 then r else find_r (r + 1) in
  let r = find_r 1 in
  let total = data_bits + r in
  let is_power_of_two p = p land (p - 1) = 0 in
  let data_position = Array.make data_bits 0 in
  let check_position = Array.make r 0 in
  let next_data = ref 0 in
  for p = 1 to total do
    if is_power_of_two p then begin
      let j =
        (* p = 2^j *)
        let rec log2 acc v = if v = 1 then acc else log2 (acc + 1) (v lsr 1) in
        log2 0 p
      in
      check_position.(j) <- p
    end
    else begin
      data_position.(!next_data) <- p;
      incr next_data
    end
  done;
  (r, data_position, check_position)

let hamming_positions ~data_bits =
  let r, data_position, _ = layout ~data_bits in
  let groups =
    Array.init r (fun j ->
        Array.to_list data_position
        |> List.mapi (fun i p -> (i, p))
        |> List.filter (fun (_, p) -> (p lsr j) land 1 = 1)
        |> List.map fst)
  in
  (r, groups)

let build_syndrome b ~data ~checks ~data_position ~check_position =
  let r = Array.length checks in
  Array.init r (fun j ->
      let covered_data =
        Array.to_list data
        |> List.filteri (fun i _ -> (data_position.(i) lsr j) land 1 = 1)
      in
      ignore check_position;
      let terms = checks.(j) :: covered_data in
      match terms with
      | [ single ] -> single
      | several -> B.reduce b Gate.Xor several)

let match_position b ~syndrome ~position =
  let r = Array.length syndrome in
  let literals =
    List.init r (fun j ->
        if (position lsr j) land 1 = 1 then syndrome.(j)
        else B.not_ b syndrome.(j))
  in
  match literals with
  | [ single ] -> single
  | several -> B.reduce b Gate.And several

let hamming_corrector ~data_bits =
  if data_bits < 1 || data_bits > 120 then
    invalid_arg "Iscas_like.hamming_corrector: 1 <= data_bits <= 120";
  let r, data_position, check_position = layout ~data_bits in
  let b = B.create ~name:(Printf.sprintf "sec%d" data_bits) () in
  let data =
    Array.init data_bits (fun i -> B.input b (Printf.sprintf "d%d" i))
  in
  let checks = Array.init r (fun j -> B.input b (Printf.sprintf "c%d" j)) in
  let syndrome =
    build_syndrome b ~data ~checks ~data_position ~check_position
  in
  Array.iteri
    (fun i d ->
      let flip = match_position b ~syndrome ~position:data_position.(i) in
      B.output b (Printf.sprintf "o%d" i) (B.xor2 b d flip))
    data;
  B.finish b

let error_detector ~data_bits =
  if data_bits < 1 || data_bits > 120 then
    invalid_arg "Iscas_like.error_detector: 1 <= data_bits <= 120";
  let r, data_position, check_position = layout ~data_bits in
  let b = B.create ~name:(Printf.sprintf "secded%d" data_bits) () in
  let data =
    Array.init data_bits (fun i -> B.input b (Printf.sprintf "d%d" i))
  in
  let checks = Array.init r (fun j -> B.input b (Printf.sprintf "c%d" j)) in
  let overall = B.input b "pall" in
  let syndrome =
    build_syndrome b ~data ~checks ~data_position ~check_position
  in
  let syndrome_nonzero = B.reduce b Gate.Or (Array.to_list syndrome) in
  (* Received overall parity: XOR of everything including the stored
     overall-parity bit; 1 means an odd number of flips happened. *)
  let parity_fail =
    B.reduce b Gate.Xor
      (Array.to_list data @ Array.to_list checks @ [ overall ])
  in
  let single = B.and2 b syndrome_nonzero parity_fail in
  let double = B.and2 b syndrome_nonzero (B.not_ b parity_fail) in
  Array.iteri
    (fun i d ->
      let here = match_position b ~syndrome ~position:data_position.(i) in
      let flip = B.and2 b here single in
      B.output b (Printf.sprintf "o%d" i) (B.xor2 b d flip))
    data;
  B.output b "single_err" single;
  B.output b "double_err" double;
  B.finish b

(* One BCD digit slice: 4-bit binary add, then add 6 when the binary
   result exceeds 9 (or produced a carry). *)
let bcd_digit b ~a ~bv ~cin =
  let carry = ref cin in
  let binary =
    Array.init 4 (fun i ->
        let s, c = Adders.full_adder_cell b ~a:a.(i) ~b:bv.(i) ~cin:!carry in
        carry := c;
        s)
  in
  let c4 = !carry in
  (* sum > 9 <=> s3 & (s2 | s1), or binary carry out. *)
  let gt9 = B.and2 b binary.(3) (B.or2 b binary.(2) binary.(1)) in
  let correct = B.or2 b c4 gt9 in
  (* Add 0110 when correcting; the carry out of bit 3 is discarded — the
     digit's decimal carry is [correct] itself. *)
  let s1 = B.xor2 b binary.(1) correct in
  let c1 = B.and2 b binary.(1) correct in
  let s2_t = B.xor2 b binary.(2) correct in
  let s2 = B.xor2 b s2_t c1 in
  let c2 = B.maj3 b binary.(2) correct c1 in
  let s3 = B.xor2 b binary.(3) c2 in
  ([| binary.(0); s1; s2; s3 |], correct)

let bcd_adder ~digits =
  if digits < 1 || digits > 8 then
    invalid_arg "Iscas_like.bcd_adder: 1 <= digits <= 8";
  let b = B.create ~name:(Printf.sprintf "bcdadd%d" digits) () in
  let bits = 4 * digits in
  let a = Array.init bits (fun i -> B.input b (Printf.sprintf "a%d" i)) in
  let bv = Array.init bits (fun i -> B.input b (Printf.sprintf "b%d" i)) in
  let cin = B.input b "cin" in
  let carry = ref cin in
  for d = 0 to digits - 1 do
    let slice arr = Array.sub arr (4 * d) 4 in
    let sums, cout = bcd_digit b ~a:(slice a) ~bv:(slice bv) ~cin:!carry in
    Array.iteri
      (fun i s -> B.output b (Printf.sprintf "s%d" ((4 * d) + i)) s)
      sums;
    carry := cout
  done;
  B.output b "cout" !carry;
  B.finish b

let mixed_datapath ~width =
  if width < 2 then invalid_arg "Iscas_like.mixed_datapath: width >= 2";
  let b = B.create ~name:(Printf.sprintf "datapath%d" width) () in
  let a = Array.init width (fun i -> B.input b (Printf.sprintf "a%d" i)) in
  let bv = Array.init width (fun i -> B.input b (Printf.sprintf "b%d" i)) in
  let cin = B.input b "cin" in
  (* Adder slice (ripple with lookahead-style P/G per bit). *)
  let carry = ref cin in
  let sums =
    Array.init width (fun i ->
        let s, c = Adders.full_adder_cell b ~a:a.(i) ~b:bv.(i) ~cin:!carry in
        carry := c;
        s)
  in
  Array.iteri (fun i s -> B.output b (Printf.sprintf "s%d" i) s) sums;
  B.output b "cout" !carry;
  (* Comparator slice. *)
  let eq_bits = Array.init width (fun i -> B.xnor2 b a.(i) bv.(i)) in
  let eq = B.reduce b Gate.And (Array.to_list eq_bits) in
  B.output b "eq" eq;
  let gt = ref (B.and2 b a.(width - 1) (B.not_ b bv.(width - 1))) in
  let prefix = ref eq_bits.(width - 1) in
  for i = width - 2 downto 0 do
    let here = B.and2 b a.(i) (B.not_ b bv.(i)) in
    gt := B.or2 b !gt (B.and2 b !prefix here);
    if i > 0 then prefix := B.and2 b !prefix eq_bits.(i)
  done;
  B.output b "gt" !gt;
  (* Parity and zero flags over the sum. *)
  B.output b "par" (B.reduce b Gate.Xor (Array.to_list sums));
  B.output b "zero" (B.not_ b (B.reduce b Gate.Or (Array.to_list sums)));
  B.finish b
