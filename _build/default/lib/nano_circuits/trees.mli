(** Regular tree-shaped circuits: parity trees (the family for which the
    paper's bounds are tight), reduction trees, multiplexers, decoders
    and comparators. *)

val parity_tree : inputs:int -> fanin:int -> Nano_netlist.Netlist.t
(** Balanced XOR tree over [inputs] leaves with gate fanin at most
    [fanin]. Requires [inputs >= 1], [fanin >= 2]. Output ["parity"]. *)

val and_tree : inputs:int -> fanin:int -> Nano_netlist.Netlist.t
val or_tree : inputs:int -> fanin:int -> Nano_netlist.Netlist.t

val majority_tree : inputs:int -> Nano_netlist.Netlist.t
(** Tree of 3-input majority gates over [inputs] leaves (a recursive
    majority network, not an exact n-input majority for [inputs > 3]).
    Requires [inputs] to be a power of 3. Output ["maj"]. *)

val mux_tree : select_bits:int -> Nano_netlist.Netlist.t
(** [2^select_bits]-to-1 multiplexer from 2-to-1 cells. Inputs
    [sel0..], [d0..]; output ["y"]. Requires [select_bits >= 1]. *)

val decoder : bits:int -> Nano_netlist.Netlist.t
(** [bits]-to-[2^bits] one-hot decoder. Outputs [y0..]. Requires
    [1 <= bits <= 8]. *)

val comparator : width:int -> Nano_netlist.Netlist.t
(** Unsigned comparator of two [width]-bit operands with outputs ["eq"],
    ["gt"] and ["lt"]. Requires [width >= 1]. *)
