module Netlist = Nano_netlist.Netlist
module B = Nano_netlist.Netlist.Builder
module Gate = Nano_netlist.Gate

let full_adder_cell b ~a ~b:bb ~cin =
  let axb = B.xor2 b a bb in
  let sum = B.xor2 b axb cin in
  let carry = B.maj3 b a bb cin in
  (sum, carry)

let declare_operands b ~width =
  let a = Array.init width (fun i -> B.input b (Printf.sprintf "a%d" i)) in
  let bv = Array.init width (fun i -> B.input b (Printf.sprintf "b%d" i)) in
  let cin = B.input b "cin" in
  (a, bv, cin)

let ripple_carry ~width =
  if width < 1 then invalid_arg "Adders.ripple_carry: width >= 1";
  let b = B.create ~name:(Printf.sprintf "rca%d" width) () in
  let a, bv, cin = declare_operands b ~width in
  let carry = ref cin in
  for i = 0 to width - 1 do
    let sum, cout = full_adder_cell b ~a:a.(i) ~b:bv.(i) ~cin:!carry in
    B.output b (Printf.sprintf "s%d" i) sum;
    carry := cout
  done;
  B.output b "cout" !carry;
  B.finish b

(* One 4-bit (or shorter tail) lookahead group. Propagate/generate terms
   are combined with fanin <= 3 gates; the group rips its carry to the
   next group, which keeps every gate within the paper's max-fanin-3
   library while still flattening the in-group carry chain. *)
let lookahead_group b ~a ~bv ~cin ~lo ~len =
  let p = Array.init len (fun i -> B.xor2 b a.(lo + i) bv.(lo + i)) in
  let g = Array.init len (fun i -> B.and2 b a.(lo + i) bv.(lo + i)) in
  let carries = Array.make (len + 1) cin in
  for i = 0 to len - 1 do
    (* c(i+1) = g_i | (p_i & c_i), flattened two-level per stage. *)
    let pc = B.and2 b p.(i) carries.(i) in
    carries.(i + 1) <- B.or2 b g.(i) pc
  done;
  let sums = Array.init len (fun i -> B.xor2 b p.(i) carries.(i)) in
  (sums, carries.(len))

let carry_lookahead ~width =
  if width < 1 then invalid_arg "Adders.carry_lookahead: width >= 1";
  let b = B.create ~name:(Printf.sprintf "cla%d" width) () in
  let a, bv, cin = declare_operands b ~width in
  let carry = ref cin in
  let lo = ref 0 in
  while !lo < width do
    let len = min 4 (width - !lo) in
    let sums, cout = lookahead_group b ~a ~bv ~cin:!carry ~lo:!lo ~len in
    Array.iteri
      (fun i sum -> B.output b (Printf.sprintf "s%d" (!lo + i)) sum)
      sums;
    carry := cout;
    lo := !lo + len
  done;
  B.output b "cout" !carry;
  B.finish b

let carry_skip ~width ~block =
  if width < 1 then invalid_arg "Adders.carry_skip: width >= 1";
  if block < 1 then invalid_arg "Adders.carry_skip: block >= 1";
  let b = B.create ~name:(Printf.sprintf "cskip%d_%d" width block) () in
  let a, bv, cin = declare_operands b ~width in
  let carry = ref cin in
  let lo = ref 0 in
  while !lo < width do
    let len = min block (width - !lo) in
    let block_cin = !carry in
    let c = ref block_cin in
    let propagates = ref [] in
    for i = 0 to len - 1 do
      let idx = !lo + i in
      let p = B.xor2 b a.(idx) bv.(idx) in
      propagates := p :: !propagates;
      B.output b (Printf.sprintf "s%d" idx) (B.xor2 b p !c);
      c := B.maj3 b a.(idx) bv.(idx) !c
    done;
    (* bypass: if every bit propagates, the block's carry-out is its
       carry-in regardless of the ripple result *)
    let all_p =
      match !propagates with
      | [ single ] -> single
      | several -> B.reduce b Gate.And (List.rev several)
    in
    let n_all_p = B.not_ b all_p in
    let through = B.and2 b all_p block_cin in
    let generated = B.and2 b n_all_p !c in
    carry := B.or2 b through generated;
    lo := !lo + len
  done;
  B.output b "cout" !carry;
  B.finish b

let mux2 b ~sel ~if0 ~if1 =
  let n_sel = B.not_ b sel in
  let t0 = B.and2 b n_sel if0 in
  let t1 = B.and2 b sel if1 in
  B.or2 b t0 t1

let carry_select ~width ~block =
  if width < 1 then invalid_arg "Adders.carry_select: width >= 1";
  if block < 1 then invalid_arg "Adders.carry_select: block >= 1";
  let b = B.create ~name:(Printf.sprintf "csel%d_%d" width block) () in
  let a, bv, cin = declare_operands b ~width in
  let carry = ref cin in
  let lo = ref 0 in
  while !lo < width do
    let len = min block (width - !lo) in
    if !lo = 0 then begin
      (* First block: plain ripple from the real carry-in. *)
      for i = 0 to len - 1 do
        let sum, cout = full_adder_cell b ~a:a.(i) ~b:bv.(i) ~cin:!carry in
        B.output b (Printf.sprintf "s%d" i) sum;
        carry := cout
      done
    end
    else begin
      (* Speculative block: compute both carry hypotheses, then select. *)
      let zero = B.const b false in
      let one = B.const b true in
      let run cin0 =
        let c = ref cin0 in
        let sums =
          Array.init len (fun i ->
              let sum, cout =
                full_adder_cell b ~a:a.(!lo + i) ~b:bv.(!lo + i) ~cin:!c
              in
              c := cout;
              sum)
        in
        (sums, !c)
      in
      let sums0, cout0 = run zero in
      let sums1, cout1 = run one in
      for i = 0 to len - 1 do
        let sum = mux2 b ~sel:!carry ~if0:sums0.(i) ~if1:sums1.(i) in
        B.output b (Printf.sprintf "s%d" (!lo + i)) sum
      done;
      carry := mux2 b ~sel:!carry ~if0:cout0 ~if1:cout1
    end;
    lo := !lo + len
  done;
  B.output b "cout" !carry;
  B.finish b
