module B = Nano_netlist.Netlist.Builder
module Gate = Nano_netlist.Gate

let mux2 b ~sel ~if0 ~if1 =
  let n_sel = B.not_ b sel in
  B.or2 b (B.and2 b n_sel if0) (B.and2 b sel if1)

let barrel_shifter ~width =
  if width < 2 || width land (width - 1) <> 0 then
    invalid_arg "Datapath.barrel_shifter: width must be a power of two >= 2";
  let stages = Nano_util.Math_ext.ceil_log2 width in
  let b = B.create ~name:(Printf.sprintf "bshift%d" width) () in
  let data = Array.init width (fun i -> B.input b (Printf.sprintf "d%d" i)) in
  let sh = Array.init stages (fun k -> B.input b (Printf.sprintf "sh%d" k)) in
  let zero = B.const b false in
  let current = ref data in
  for k = 0 to stages - 1 do
    let amount = 1 lsl k in
    current :=
      Array.init width (fun j ->
          let shifted = if j >= amount then !current.(j - amount) else zero in
          mux2 b ~sel:sh.(k) ~if0:(!current).(j) ~if1:shifted)
  done;
  Array.iteri (fun j n -> B.output b (Printf.sprintf "y%d" j) n) !current;
  B.finish b

let priority_encoder ~width =
  if width < 2 || width > 64 then
    invalid_arg "Datapath.priority_encoder: 2 <= width <= 64";
  let b = B.create ~name:(Printf.sprintf "prienc%d" width) () in
  let requests =
    Array.init width (fun i -> B.input b (Printf.sprintf "r%d" i))
  in
  (* win_i: request i set and no higher request *)
  let wins =
    Array.init width (fun i ->
        if i = width - 1 then requests.(i)
        else begin
          let higher =
            List.init (width - 1 - i) (fun d -> B.not_ b requests.(i + 1 + d))
          in
          B.reduce b Gate.And (requests.(i) :: higher)
        end)
  in
  let index_bits = Nano_util.Math_ext.ceil_log2 width in
  for bit = 0 to index_bits - 1 do
    let contributors =
      Array.to_list wins |> List.filteri (fun i _ -> (i lsr bit) land 1 = 1)
    in
    let value =
      match contributors with
      | [] -> B.const b false
      | [ single ] -> single
      | several -> B.reduce b Gate.Or several
    in
    B.output b (Printf.sprintf "idx%d" bit) value
  done;
  B.output b "valid" (B.reduce b Gate.Or (Array.to_list requests));
  B.finish b

let booth_multiplier ~width =
  if width < 1 || width > 16 then
    invalid_arg "Datapath.booth_multiplier: 1 <= width <= 16";
  let b = B.create ~name:(Printf.sprintf "booth%d" width) () in
  let a = Array.init width (fun i -> B.input b (Printf.sprintf "a%d" i)) in
  let bv = Array.init width (fun i -> B.input b (Printf.sprintf "b%d" i)) in
  let total = 2 * width in
  let zero = B.const b false in
  (* Sign-extended multiplicand over the full product width. *)
  let ext_a = Array.init total (fun j -> if j < width then a.(j) else a.(width - 1)) in
  (* Accumulator, two's complement. *)
  let acc = ref (Array.make total zero) in
  for i = 0 to width - 1 do
    (* Booth digit from (b_{i-1}, b_i): +1 on (1,0), -1 on (0,1). *)
    let prev = if i = 0 then zero else bv.(i - 1) in
    let plus = B.and2 b prev (B.not_ b bv.(i)) in
    let minus = B.and2 b (B.not_ b prev) bv.(i) in
    (* addend_j = plus ? s_j : minus ? ~s_j : 0, where s = ext_a << i;
       the missing "+1" of the two's complement arrives as carry-in. *)
    let addend =
      Array.init total (fun j ->
          let s = if j >= i then ext_a.(j - i) else zero in
          B.or2 b (B.and2 b plus s) (B.and2 b minus (B.not_ b s)))
    in
    (* ripple add into the accumulator with carry-in = minus *)
    let carry = ref minus in
    acc :=
      Array.init total (fun j ->
          let sum, cout =
            Adders.full_adder_cell b ~a:(!acc).(j) ~b:addend.(j) ~cin:!carry
          in
          carry := cout;
          sum)
  done;
  Array.iteri (fun j n -> B.output b (Printf.sprintf "p%d" j) n) !acc;
  B.finish b
