lib/nano_circuits/suite.mli: Nano_netlist
