lib/nano_circuits/multipliers.mli: Nano_netlist
