lib/nano_circuits/alu.mli: Nano_netlist
