lib/nano_circuits/iscas_like.mli: Nano_netlist
