lib/nano_circuits/datapath.mli: Nano_netlist
