lib/nano_circuits/iscas_like.ml: Adders Array List Nano_netlist Nano_util Printf
