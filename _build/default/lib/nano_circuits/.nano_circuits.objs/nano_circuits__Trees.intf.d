lib/nano_circuits/trees.mli: Nano_netlist
