lib/nano_circuits/random_circuit.ml: Array List Nano_netlist Nano_util Printf
