lib/nano_circuits/alu.ml: Adders Array List Nano_netlist Printf
