lib/nano_circuits/random_circuit.mli: Nano_netlist
