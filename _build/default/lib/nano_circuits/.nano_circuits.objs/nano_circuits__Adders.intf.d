lib/nano_circuits/adders.mli: Nano_netlist
