lib/nano_circuits/datapath.ml: Adders Array List Nano_netlist Nano_util Printf
