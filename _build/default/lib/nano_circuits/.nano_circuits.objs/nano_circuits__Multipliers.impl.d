lib/nano_circuits/multipliers.ml: Array List Nano_netlist Printf
