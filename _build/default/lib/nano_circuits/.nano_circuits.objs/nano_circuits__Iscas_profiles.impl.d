lib/nano_circuits/iscas_profiles.ml: Format List
