lib/nano_circuits/adders.ml: Array List Nano_netlist Printf
