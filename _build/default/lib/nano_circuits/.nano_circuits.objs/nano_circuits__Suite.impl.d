lib/nano_circuits/suite.ml: Adders Alu Datapath Iscas_like List Multipliers Nano_netlist Nano_synth Trees
