lib/nano_circuits/iscas_profiles.mli: Format
