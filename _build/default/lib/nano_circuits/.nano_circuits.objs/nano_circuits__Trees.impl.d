lib/nano_circuits/trees.ml: Array List Nano_netlist Printf
