(** Additional datapath blocks: barrel shifter, priority encoder, and a
    radix-2 Booth-recoded multiplier. *)

val barrel_shifter : width:int -> Nano_netlist.Netlist.t
(** Logical left shifter built from [log2 width] mux stages. Inputs
    [d0..d(w-1)] and [sh0..] (shift amount, [ceil_log2 width] bits);
    outputs [y0..y(w-1)]. Requires [width >= 2] and a power-of-two
    width. *)

val priority_encoder : width:int -> Nano_netlist.Netlist.t
(** Highest-set-bit encoder. Inputs [r0..r(w-1)] (bit [w-1] has the
    highest priority); outputs [idx0..] (binary index of the winner) and
    ["valid"]. Requires [2 <= width <= 64]. *)

val booth_multiplier : width:int -> Nano_netlist.Netlist.t
(** Signed (two's-complement) multiplier using radix-2 Booth recoding:
    partial product [i] is [+a], [-a] or [0] selected by
    [b(i-1), b(i)]. Operands [a0..], [b0..]; product [p0..p(2w-1)]
    (two's complement). Requires [1 <= width <= 16]. *)
