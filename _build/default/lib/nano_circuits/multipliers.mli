(** Array and carry-save multiplier generators (the c6288 family in the
    paper's benchmark set is a 16×16 array multiplier).

    Operands are [a0..a(w-1)] and [b0..b(w-1)]; products are
    [p0..p(2w-1)]. *)

val array_multiplier : width:int -> Nano_netlist.Netlist.t
(** Classic carry-propagate array of full-adder cells. Requires
    [width >= 1]. *)

val carry_save_multiplier : width:int -> Nano_netlist.Netlist.t
(** Carry-save reduction of the partial products with a final
    ripple-carry merge (Wallace-style row reduction). Requires
    [width >= 2]. *)
