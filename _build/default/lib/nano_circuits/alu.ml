module B = Nano_netlist.Netlist.Builder
module Gate = Nano_netlist.Gate

let make ~width =
  if width < 1 then invalid_arg "Alu.make: width >= 1";
  let b = B.create ~name:(Printf.sprintf "alu%d" width) () in
  let a = Array.init width (fun i -> B.input b (Printf.sprintf "a%d" i)) in
  let bv = Array.init width (fun i -> B.input b (Printf.sprintf "b%d" i)) in
  let op = Array.init 3 (fun i -> B.input b (Printf.sprintf "op%d" i)) in
  let cin = B.input b "cin" in
  let nop = Array.map (fun o -> B.not_ b o) op in
  (* One-hot opcode decode. *)
  let decode v =
    let lits =
      List.init 3 (fun i -> if (v lsr i) land 1 = 1 then op.(i) else nop.(i))
    in
    B.reduce b Gate.And lits
  in
  let is_op = Array.init 8 decode in
  (* Adder/subtractor: b is conditionally inverted; the carry-in is cin
     for ADD and (not cin) semantics folded into SUB via forced 1. *)
  let sub = is_op.(1) in
  let b_eff = Array.map (fun bit -> B.xor2 b bit sub) bv in
  let carry = ref (B.or2 b (B.and2 b cin (B.not_ b sub)) sub) in
  let sums =
    Array.init width (fun i ->
        let s, c = Adders.full_adder_cell b ~a:a.(i) ~b:b_eff.(i) ~cin:!carry in
        carry := c;
        s)
  in
  let ands = Array.init width (fun i -> B.and2 b a.(i) bv.(i)) in
  let ors = Array.init width (fun i -> B.or2 b a.(i) bv.(i)) in
  let xors = Array.init width (fun i -> B.xor2 b a.(i) bv.(i)) in
  let nors = Array.init width (fun i -> B.nor2 b a.(i) bv.(i)) in
  let nota = Array.map (fun bit -> B.not_ b bit) a in
  let result_bits =
    Array.init width (fun i ->
        let choices =
          [
            (is_op.(0), sums.(i));
            (is_op.(1), sums.(i));
            (is_op.(2), ands.(i));
            (is_op.(3), ors.(i));
            (is_op.(4), xors.(i));
            (is_op.(5), nors.(i));
            (is_op.(6), a.(i));
            (is_op.(7), nota.(i));
          ]
        in
        let terms =
          List.map (fun (sel, value) -> B.and2 b sel value) choices
        in
        B.reduce b Gate.Or terms)
  in
  Array.iteri
    (fun i bit -> B.output b (Printf.sprintf "y%d" i) bit)
    result_bits;
  B.output b "cout" !carry;
  let zero =
    B.not_ b (B.reduce b Gate.Or (Array.to_list result_bits))
  in
  B.output b "zero" zero;
  B.finish b
