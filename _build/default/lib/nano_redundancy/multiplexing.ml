module Netlist = Nano_netlist.Netlist
module B = Nano_netlist.Netlist.Builder

let permutation rng n =
  let p = Array.init n (fun i -> i) in
  Nano_util.Prng.shuffle_in_place rng p;
  p

(* One NAND layer: pair wire i of [xs] with wire perm(i) of [ys]. *)
let nand_layer b rng xs ys =
  let n = Array.length xs in
  let p = permutation rng n in
  Array.init n (fun i -> B.nand2 b xs.(i) ys.(p.(i)))

let nand_unit ~bundle ~restorative_stages ~seed =
  if bundle < 2 then invalid_arg "Multiplexing.nand_unit: bundle >= 2";
  if restorative_stages < 0 then
    invalid_arg "Multiplexing.nand_unit: restorative_stages >= 0";
  let rng = Nano_util.Prng.create ~seed in
  let b =
    B.create
      ~name:(Printf.sprintf "vnmux_nand_N%d_U%d" bundle restorative_stages)
      ()
  in
  let xs = Array.init bundle (fun i -> B.input b (Printf.sprintf "x%d" i)) in
  let ys = Array.init bundle (fun i -> B.input b (Printf.sprintf "y%d" i)) in
  (* Executive stage. *)
  let stage = ref (nand_layer b rng xs ys) in
  (* Each restorative stage NANDs the bundle with a permuted copy of
     itself twice: the first layer inverts the level, the second restores
     polarity while sharpening the distribution toward 0/1. *)
  for _ = 1 to restorative_stages do
    let inverted = nand_layer b rng !stage !stage in
    stage := nand_layer b rng inverted inverted
  done;
  Array.iteri (fun i z -> B.output b (Printf.sprintf "z%d" i) z) !stage;
  B.finish b

let analytic_nand_level ~epsilon x y =
  if not (epsilon >= 0. && epsilon <= 0.5) then
    invalid_arg "Multiplexing.analytic_nand_level: epsilon in [0, 1/2]";
  epsilon +. ((1. -. (2. *. epsilon)) *. (1. -. (x *. y)))

let analytic_stage ~epsilon ~restorative_stages x y =
  let level = ref (analytic_nand_level ~epsilon x y) in
  for _ = 1 to restorative_stages do
    let inverted = analytic_nand_level ~epsilon !level !level in
    level := analytic_nand_level ~epsilon inverted inverted
  done;
  !level

let stimulated_fixed_point ~epsilon =
  (* Iterate the double-layer restoration map from level 1; it converges
     quickly to the stable stimulated level for ε < ~0.0887 (von
     Neumann's threshold for NAND multiplexing). *)
  let step l =
    let inverted = analytic_nand_level ~epsilon l l in
    analytic_nand_level ~epsilon inverted inverted
  in
  let rec go l i =
    if i = 0 then l
    else begin
      let l' = step l in
      if Float.abs (l' -. l) < 1e-12 then l' else go l' (i - 1)
    end
  in
  go 1. 10_000

let size ~bundle ~restorative_stages = bundle * (1 + (2 * restorative_stages))

let measured_output_level ?(seed = 0x4e55) ?(trials = 256) ~epsilon ~bundle
    ~restorative_stages ~x_level ~y_level () =
  let unit_netlist = nand_unit ~bundle ~restorative_stages ~seed in
  let rng = Nano_util.Prng.create ~seed:(seed lxor 0x77) in
  let stats = Nano_util.Stats.create () in
  let n_nodes = Netlist.node_count unit_netlist in
  let values = Array.make n_nodes 0L in
  let channel = Nano_faults.Channel.create ~epsilon in
  let inputs = Netlist.inputs unit_netlist in
  for _ = 1 to trials do
    (* One trial = 64 parallel bundle draws in the bit lanes. *)
    let input_words =
      Array.of_list
        (List.map
           (fun id ->
             let name =
               match (Netlist.info unit_netlist id).Netlist.name with
               | Some nm -> nm
               | None -> ""
             in
             let level = if String.length name > 0 && name.[0] = 'x' then x_level else y_level in
             Nano_util.Prng.word_with_density rng ~p:level)
           inputs)
    in
    (* Noisy evaluation (every NAND is failure-prone). *)
    List.iteri
      (fun i id -> values.(id) <- input_words.(i))
      inputs;
    Netlist.iter unit_netlist (fun id info ->
        match info.Netlist.kind with
        | Nano_netlist.Gate.Input -> ()
        | kind ->
          let words = Array.map (fun f -> values.(f)) info.Netlist.fanins in
          let clean = Nano_netlist.Gate.eval_word kind words in
          values.(id) <-
            Int64.logxor clean (Nano_faults.Channel.noise_word channel rng));
    (* Output excitation level per lane, averaged over lanes. *)
    let outputs = Netlist.outputs unit_netlist in
    for lane = 0 to 63 do
      let stimulated =
        List.fold_left
          (fun acc (_, node) ->
            if Nano_util.Bits.get values.(node) lane then acc + 1 else acc)
          0 outputs
      in
      Nano_util.Stats.add stats
        (float_of_int stimulated /. float_of_int (List.length outputs))
    done
  done;
  Nano_util.Stats.summary stats
