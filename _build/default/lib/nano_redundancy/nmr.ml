module Netlist = Nano_netlist.Netlist
module B = Nano_netlist.Netlist.Builder
module Gate = Nano_netlist.Gate

let make ~n netlist =
  if n < 3 || n land 1 = 0 then invalid_arg "Nmr.make: n must be odd and >= 3";
  let b = B.create ~name:(Printf.sprintf "%s_nmr%d" (Netlist.name netlist) n) () in
  (* Shared primary inputs. *)
  let input_map = Array.make (Netlist.node_count netlist) (-1) in
  List.iter
    (fun id ->
      let name =
        match (Netlist.info netlist id).Netlist.name with
        | Some nm -> nm
        | None -> Printf.sprintf "_in%d" id
      in
      input_map.(id) <- B.input b name)
    (Netlist.inputs netlist);
  (* One replica of the logic per module. *)
  let replicate () =
    let map = Array.make (Netlist.node_count netlist) (-1) in
    Netlist.iter netlist (fun id info ->
        match info.Netlist.kind with
        | Gate.Input -> map.(id) <- input_map.(id)
        | kind ->
          let fanins =
            Array.to_list (Array.map (fun f -> map.(f)) info.Netlist.fanins)
          in
          map.(id) <- B.add b kind fanins);
    map
  in
  let replicas = List.init n (fun _ -> replicate ()) in
  List.iter
    (fun (name, node) ->
      let copies = List.map (fun map -> map.(node)) replicas in
      let voted = B.add b Gate.Majority copies in
      B.output b name voted)
    (Netlist.outputs netlist);
  B.finish b

let size_overhead ~n netlist =
  let voted = make ~n netlist in
  float_of_int (Netlist.size voted) /. float_of_int (Netlist.size netlist)

let binomial_tail ~n ~k ~p =
  if k > n then 0.
  else begin
    let log_comb n k =
      let rec lf acc i = if i <= 1 then acc else lf (acc +. log (float_of_int i)) (i - 1) in
      lf 0. n -. lf 0. k -. lf 0. (n - k)
    in
    let total = ref 0. in
    for i = max k 0 to n do
      let term =
        if p = 0. then (if i = 0 then 1. else 0.)
        else if p = 1. then (if i = n then 1. else 0.)
        else
          exp
            (log_comb n i
            +. (float_of_int i *. log p)
            +. (float_of_int (n - i) *. log (1. -. p)))
      in
      total := !total +. term
    done;
    Float.min 1. !total
  end

let analytic_voted_error ~n ~module_error ~voter_epsilon =
  if n < 1 || n land 1 = 0 then
    invalid_arg "Nmr.analytic_voted_error: n must be odd and >= 1";
  if not (module_error >= 0. && module_error <= 1.) then
    invalid_arg "Nmr.analytic_voted_error: module_error in [0, 1]";
  if not (voter_epsilon >= 0. && voter_epsilon <= 0.5) then
    invalid_arg "Nmr.analytic_voted_error: voter_epsilon in [0, 1/2]";
  let majority_wrong = binomial_tail ~n ~k:((n / 2) + 1) ~p:module_error in
  (* The voter flips the majority's verdict with probability ε. *)
  (voter_epsilon *. (1. -. majority_wrong))
  +. ((1. -. voter_epsilon) *. majority_wrong)
