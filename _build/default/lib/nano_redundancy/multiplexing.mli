(** Von Neumann NAND multiplexing: signals travel as bundles of N wires
    and every logical NAND becomes an executive stage of N parallel
    NANDs followed by restorative stages that re-amplify the majority
    level. The paper cites this (via von Neumann's parallel restitution)
    as one concrete way to spend redundancy; we build it to compare
    achieved reliability and energy against the lower bounds.

    Terminology: the {e excitation level} of a bundle is the fraction of
    its wires carrying 1. A stimulated bundle should be near level 1, a
    quiet one near level 0. *)

val nand_unit :
  bundle:int -> restorative_stages:int -> seed:int -> Nano_netlist.Netlist.t
(** A multiplexed NAND computing one logical NAND of two bundles.
    Inputs [x0..x(N-1)] and [y0..y(N-1)]; outputs [z0..z(N-1)]. Each
    stage pairs wires through a seeded pseudo-random permutation (von
    Neumann's "U" randomizing unit). Requires [bundle >= 2],
    [restorative_stages >= 0]. A restorative stage costs two NAND
    layers. *)

val analytic_nand_level : epsilon:float -> float -> float -> float
(** Expected output excitation level of one ε-noisy NAND layer given
    input levels [x] and [y]: [ε + (1-2ε)(1 - x·y)]. *)

val analytic_stage :
  epsilon:float -> restorative_stages:int -> float -> float -> float
(** Expected output level of a full multiplexed NAND (executive stage
    followed by the given number of restorative stages, each two NAND
    layers with duplicated inputs). *)

val stimulated_fixed_point : epsilon:float -> float
(** The stable high excitation level of iterated restoration: the largest
    fixed point of [l ↦ ε + (1-2ε)(1 - l²)] composed twice, approached
    when a stimulated bundle is repeatedly restored. Computed
    numerically. *)

val size : bundle:int -> restorative_stages:int -> int
(** Gate count of {!nand_unit}: [bundle * (1 + 2 * restorative_stages)]
    NAND gates. *)

val measured_output_level :
  ?seed:int -> ?trials:int -> epsilon:float -> bundle:int ->
  restorative_stages:int -> x_level:float -> y_level:float -> unit ->
  Nano_util.Stats.summary
(** Monte-Carlo measurement: drive the unit with bundles whose wires are
    independently stimulated at the given levels, inject ε gate noise,
    and return statistics of the output excitation level across
    [trials] (default 256) draws. *)
