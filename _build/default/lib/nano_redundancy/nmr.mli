(** N-modular redundancy: replicate a netlist N times (N odd) and vote
    each primary output with a majority gate.

    The paper's bounds deliberately assume {e no} particular redundancy
    scheme; NMR is implemented here as the classical upper-bound
    construction the lower bounds are compared against (ablation B in
    DESIGN.md). *)

val make : n:int -> Nano_netlist.Netlist.t -> Nano_netlist.Netlist.t
(** [make ~n netlist] shares the primary inputs across [n] replicas and
    adds one [n]-input majority voter per output (the voter is itself a
    failure-prone gate under [Nano_faults]). Requires odd [n >= 3]. *)

val size_overhead : n:int -> Nano_netlist.Netlist.t -> float
(** Gate-count ratio [size (make ~n c) / size c]. *)

val analytic_voted_error : n:int -> module_error:float -> voter_epsilon:float -> float
(** Probability that a voted output is wrong when each replica's output
    is independently wrong with probability [module_error] and the voter
    itself flips with probability [voter_epsilon]:
    [P = q (1 - B) + (1 - q) B] where [B] is the probability that a
    majority of replicas are wrong and [q = voter_epsilon]. *)

val binomial_tail : n:int -> k:int -> p:float -> float
(** [P(X >= k)] for [X ~ Binomial(n, p)]; exposed for tests. *)
