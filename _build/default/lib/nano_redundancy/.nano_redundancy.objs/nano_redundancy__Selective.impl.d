lib/nano_redundancy/selective.ml: Array Hashtbl List Nano_faults Nano_netlist Printf
