lib/nano_redundancy/nmr.ml: Array Float List Nano_netlist Printf
