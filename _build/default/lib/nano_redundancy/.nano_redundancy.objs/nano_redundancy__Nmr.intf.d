lib/nano_redundancy/nmr.mli: Nano_netlist
