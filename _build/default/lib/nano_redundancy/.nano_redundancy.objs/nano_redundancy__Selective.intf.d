lib/nano_redundancy/selective.mli: Nano_netlist
