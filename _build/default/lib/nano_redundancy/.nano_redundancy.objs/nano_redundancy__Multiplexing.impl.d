lib/nano_redundancy/multiplexing.ml: Array Float Int64 List Nano_faults Nano_netlist Nano_util Printf String
