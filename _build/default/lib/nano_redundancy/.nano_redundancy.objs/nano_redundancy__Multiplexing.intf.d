lib/nano_redundancy/multiplexing.mli: Nano_netlist Nano_util
