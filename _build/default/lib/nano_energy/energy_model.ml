type estimate = {
  switching_energy : float;
  leakage_energy : float;
  total_energy : float;
  delay : float;
  average_power : float;
  energy_delay : float;
  leakage_share : float;
}

let of_profile ~tech ~size ~depth ~activity =
  if size < 0 then invalid_arg "Energy_model.of_profile: negative size";
  if depth < 0 then invalid_arg "Energy_model.of_profile: negative depth";
  if not (activity >= 0. && activity <= 1.) then
    invalid_arg "Energy_model.of_profile: activity must be in [0, 1]";
  let s = float_of_int size in
  let open Technology in
  let switching_energy =
    0.5 *. tech.cap_per_gate *. tech.vdd *. tech.vdd *. activity *. s
  in
  let leakage_energy =
    tech.leakage_factor *. tech.vdd *. (1. -. activity) *. s
  in
  let total_energy = switching_energy +. leakage_energy in
  let delay = float_of_int depth *. gate_delay tech in
  let average_power = if delay = 0. then 0. else total_energy /. delay in
  {
    switching_energy;
    leakage_energy;
    total_energy;
    delay;
    average_power;
    energy_delay = total_energy *. delay;
    leakage_share =
      (if total_energy = 0. then 0. else leakage_energy /. total_energy);
  }

let of_netlist ~tech ~activity netlist =
  of_profile ~tech
    ~size:(Nano_netlist.Netlist.size netlist)
    ~depth:(Nano_netlist.Netlist.depth netlist)
    ~activity

let gate_capacitance kind ~arity =
  let module Gate = Nano_netlist.Gate in
  let base =
    match kind with
    | Gate.Input | Gate.Const _ | Gate.Buf -> 0.
    | Gate.Not -> 0.5
    | Gate.Nand | Gate.Nor -> 1.0
    | Gate.And | Gate.Or -> 1.25
    | Gate.Majority -> 1.6
    | Gate.Xor | Gate.Xnor -> 1.8
  in
  if base = 0. then 0. else base +. (0.15 *. float_of_int (max 0 (arity - 2)))

let of_netlist_weighted ~tech ~node_activity netlist =
  let module Netlist = Nano_netlist.Netlist in
  if Array.length node_activity <> Netlist.node_count netlist then
    invalid_arg "Energy_model.of_netlist_weighted: activity length mismatch";
  let open Technology in
  let switching = ref 0. in
  let leaking = ref 0. in
  Netlist.iter netlist (fun id info ->
      let cap =
        gate_capacitance info.Netlist.kind
          ~arity:(Array.length info.Netlist.fanins)
      in
      if cap > 0. then begin
        let sw = node_activity.(id) in
        if not (sw >= 0. && sw <= 1.) then
          invalid_arg "Energy_model.of_netlist_weighted: activity out of range";
        switching :=
          !switching +. (0.5 *. tech.cap_per_gate *. cap *. tech.vdd *. tech.vdd *. sw);
        leaking := !leaking +. (tech.leakage_factor *. tech.vdd *. cap *. (1. -. sw))
      end);
  let timing = Nano_netlist.Timing.analyze netlist in
  (* Scale the unit-ish timing delays by the technology's Chen-Hu
     operating point so supply scaling still matters. *)
  let delay = timing.Nano_netlist.Timing.max_arrival *. gate_delay tech in
  let total_energy = !switching +. !leaking in
  {
    switching_energy = !switching;
    leakage_energy = !leaking;
    total_energy;
    delay;
    average_power = (if delay = 0. then 0. else total_energy /. delay);
    energy_delay = total_energy *. delay;
    leakage_share =
      (if total_energy = 0. then 0. else !leaking /. total_energy);
  }

let safe_div a b = if b = 0. then Float.nan else a /. b

let ratio a b =
  {
    switching_energy = safe_div a.switching_energy b.switching_energy;
    leakage_energy = safe_div a.leakage_energy b.leakage_energy;
    total_energy = safe_div a.total_energy b.total_energy;
    delay = safe_div a.delay b.delay;
    average_power = safe_div a.average_power b.average_power;
    energy_delay = safe_div a.energy_delay b.energy_delay;
    leakage_share = safe_div a.leakage_share b.leakage_share;
  }
