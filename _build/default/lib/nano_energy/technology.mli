(** Technology parameters for the nanoscale CMOS case study (Section 5).

    Units are normalized: capacitance per gate of 1.0 corresponds to an
    average mapped-library gate; delay follows the Chen–Hu alpha-power
    model [D ∝ Vdd / (Vdd - VT)^alpha]. *)

type t = {
  name : string;
  vdd : float;  (** Supply voltage (V). *)
  vt : float;  (** Threshold voltage (V). *)
  alpha : float;  (** Velocity-saturation exponent (≈ 1.3 for 90nm). *)
  cap_per_gate : float;  (** Normalized switched capacitance per gate. *)
  leakage_factor : float;
      (** The paper's [K]: per-gate leakage energy per unit interval,
          normalized like [cap_per_gate]. *)
}

val nm90 : t
(** Default 90nm-class operating point (Vdd 1.0V, VT 0.3V, alpha 1.3),
    with [leakage_factor] calibrated so a generic circuit with
    [sw0 = 0.5] burns 50% of its energy in leakage — the paper's baseline
    assumption for sub-90nm nodes. *)

val nm65 : t
(** Predictive 65nm-class point with a heavier leakage share. *)

val ideal_switching_only : t
(** Zero leakage; isolates the Section 4 switching-energy results. *)

val with_vdd : t -> float -> t
(** Same technology at a different supply. Requires [vdd > vt]. *)

val gate_delay : t -> float
(** Chen–Hu normalized gate delay at the technology's operating point. *)

val calibrate_leakage : t -> activity:float -> share:float -> t
(** [calibrate_leakage tech ~activity ~share] rescales [leakage_factor]
    so that a circuit with the given average activity spends fraction
    [share] of its total energy on leakage. Requires [0 <= share < 1] and
    [0 < activity <= 1]. *)
