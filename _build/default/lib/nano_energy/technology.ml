type t = {
  name : string;
  vdd : float;
  vt : float;
  alpha : float;
  cap_per_gate : float;
  leakage_factor : float;
}

let gate_delay t = t.vdd /. ((t.vdd -. t.vt) ** t.alpha)

(* Switching energy per gate: 1/2 C Vdd^2 sw; leakage energy per gate:
   K Vdd (1 - sw). The calibration below solves for K. *)
let calibrate_leakage t ~activity ~share =
  if not (share >= 0. && share < 1.) then
    invalid_arg "Technology.calibrate_leakage: share must be in [0, 1)";
  if not (activity > 0. && activity <= 1.) then
    invalid_arg "Technology.calibrate_leakage: activity must be in (0, 1]";
  let switching_per_gate = 0.5 *. t.cap_per_gate *. t.vdd *. t.vdd *. activity in
  let idle = 1. -. activity in
  let leakage_factor =
    if share = 0. || idle <= 0. then 0.
    else share /. (1. -. share) *. switching_per_gate /. (t.vdd *. idle)
  in
  { t with leakage_factor }

let base name ~vdd ~vt ~alpha =
  { name; vdd; vt; alpha; cap_per_gate = 1.0; leakage_factor = 0. }

let nm90 =
  calibrate_leakage (base "90nm" ~vdd:1.0 ~vt:0.3 ~alpha:1.3) ~activity:0.5
    ~share:0.5

let nm65 =
  calibrate_leakage (base "65nm" ~vdd:0.9 ~vt:0.28 ~alpha:1.25) ~activity:0.5
    ~share:0.6

let ideal_switching_only = base "ideal" ~vdd:1.0 ~vt:0.3 ~alpha:1.3

let with_vdd t vdd =
  if not (vdd > t.vt) then invalid_arg "Technology.with_vdd: vdd must exceed vt";
  { t with vdd }
