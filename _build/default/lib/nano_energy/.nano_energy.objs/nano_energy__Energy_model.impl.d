lib/nano_energy/energy_model.ml: Array Float Nano_netlist Technology
