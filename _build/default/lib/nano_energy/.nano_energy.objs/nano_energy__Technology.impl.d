lib/nano_energy/technology.ml:
