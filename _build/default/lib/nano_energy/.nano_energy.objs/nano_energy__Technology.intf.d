lib/nano_energy/technology.mli:
