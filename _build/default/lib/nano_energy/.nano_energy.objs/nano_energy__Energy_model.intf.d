lib/nano_energy/energy_model.mli: Nano_netlist Technology
