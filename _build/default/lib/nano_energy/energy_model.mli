(** Circuit-level energy, delay and power estimates.

    Total load capacitance is taken proportional to gate count
    (Nemani–Najm / Marculescu–Pedram high-level estimation, as assumed by
    the paper's Corollary 2). *)

type estimate = {
  switching_energy : float;
  leakage_energy : float;
  total_energy : float;
  delay : float;
  average_power : float;  (** [total_energy / delay]. *)
  energy_delay : float;  (** [total_energy * delay]. *)
  leakage_share : float;  (** [leakage_energy / total_energy]. *)
}

val of_profile :
  tech:Technology.t -> size:int -> depth:int -> activity:float -> estimate
(** [of_profile ~tech ~size ~depth ~activity] evaluates the model for a
    circuit with [size] gates, [depth] logic levels and average per-gate
    switching activity [activity]. Requires [size >= 0], [depth >= 0] and
    [0 <= activity <= 1]; [depth = 0] yields [delay = 0] and an infinite
    average power is avoided by reporting 0 in that case. *)

val of_netlist :
  tech:Technology.t -> activity:float -> Nano_netlist.Netlist.t -> estimate
(** Convenience wrapper reading size and depth from a netlist. *)

val gate_capacitance : Nano_netlist.Gate.kind -> arity:int -> float
(** Relative switched capacitance of one gate, in units of a 2-input
    NAND: inverters 0.5, NAND/NOR 1.0, AND/OR 1.25 (internal inverter),
    XOR/XNOR 1.8, majority 1.6; plus 0.15 per fanin beyond two. Sources
    and buffers are free. *)

val of_netlist_weighted :
  tech:Technology.t ->
  node_activity:float array ->
  Nano_netlist.Netlist.t ->
  estimate
(** Finer estimate: per-gate switched capacitance from
    {!gate_capacitance} and per-node activities (e.g. from
    [Nano_sim.Activity] or the glitch-aware estimator), with delay taken
    from static timing ([Nano_netlist.Timing.default_delay]) instead of
    raw level count. *)

val ratio : estimate -> estimate -> estimate
(** [ratio a b] divides each field of [a] by the corresponding field of
    [b] (shares are divided too); used for normalized reporting. Fields
    whose denominator is 0 are reported as [nan]. *)
