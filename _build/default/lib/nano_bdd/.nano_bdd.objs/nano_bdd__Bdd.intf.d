lib/nano_bdd/bdd.mli: Nano_logic
