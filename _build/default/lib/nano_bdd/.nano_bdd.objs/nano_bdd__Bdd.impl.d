lib/nano_bdd/bdd.ml: Array Buffer Hashtbl List Nano_logic Printf
